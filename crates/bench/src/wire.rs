//! The JSON-lines request/response wire format behind `sickle-serve`.
//!
//! One request per line on stdin, one response per line on stdout; the
//! schema is documented in this crate's `README.md`. A request either
//! names a suite benchmark (`"benchmark": id`) or carries an inline task
//! (`"tables"` + `"demo"`), plus budget, analyzer, workers and an
//! optional `"id"` echoed verbatim in the response. Failures come back as
//! structured errors (`{"status":"error","error":{"kind","message"}}`)
//! keyed by [`SickleError::kind`] — a malformed line never kills the
//! server.

use std::sync::OnceLock;
use std::time::Duration;

use sickle_benchmarks::{all_benchmarks, Benchmark};
use sickle_core::{
    AnalyzerChoice, Budget, CachePolicy, JoinKey, ProgressSnapshot, Session, SickleError,
    SynthConfig, SynthRequest, SynthResult,
};
use sickle_provenance::Demo;
use sickle_table::{Table, Value};

use crate::json::{Json, JsonError};
use crate::runner::Technique;

/// A decoded wire request: the core [`SynthRequest`] plus the envelope
/// metadata (`id`, the `progress` streaming flag). Marked
/// `#[non_exhaustive]`; decode with [`WireRequest::from_json`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct WireRequest {
    /// The request id, echoed verbatim into the response (any JSON value).
    pub id: Json,
    /// The decoded synthesis request.
    pub request: SynthRequest,
    /// When true, the server streams `"solution"` / `"progress"` event
    /// lines (with the acceptance-stage time split) before the final
    /// response line.
    pub progress: bool,
    /// For suite requests (`"benchmark": id`), the benchmark id: the
    /// success response then carries `solved`/`rank` against the task's
    /// ground truth, so a remote client (the shard driver) can assemble
    /// `BENCH_synthesis.json` records without re-parsing solutions.
    pub benchmark: Option<usize>,
    /// The raw `"prior"` field: the id of an earlier retained request
    /// this one edits. Only `sickle-serve` keeps the id → fingerprint
    /// registry needed to resolve it; the plain stdio pipeline rejects
    /// requests carrying it.
    pub prior: Option<Json>,
}

/// Looks up an analyzer by its wire name.
///
/// Accepted names: `provenance` (alias `sickle`), `type-abs`,
/// `value-abs`, `no-prune`.
pub fn analyzer_by_name(name: &str) -> Option<AnalyzerChoice> {
    match name {
        "provenance" | "sickle" => Some(Technique::Provenance.choice()),
        "type-abs" => Some(Technique::TypeAbs.choice()),
        "value-abs" => Some(Technique::ValueAbs.choice()),
        "no-prune" => Some(AnalyzerChoice::NoPrune),
        _ => None,
    }
}

fn invalid(msg: impl Into<String>) -> SickleError {
    SickleError::invalid(msg)
}

/// Upper bound on per-request worker threads: each worker is one OS
/// thread plus a skeleton shard, so an unbounded count would let a
/// single request exhaust the process.
const MAX_WIRE_WORKERS: usize = 64;

/// Upper bound on the per-request engine-cache cap: each entry can hold a
/// full provenance table, so an absurd cap would let one request pin
/// unbounded memory in a shared server.
const MAX_WIRE_CACHE_CAP: usize = 1_000_000;

/// Decodes the optional `"cache"` policy object: `"policy"`
/// (`"cost-aware"` (default) | `"legacy"`), `"cap"`, `"spill"`,
/// `"cost_aware"` overrides.
fn decode_cache_policy(c: &Json) -> Result<CachePolicy, SickleError> {
    let mut policy = match c.get("policy") {
        None => CachePolicy::default(),
        Some(p) => match p.as_str() {
            Some("cost-aware") => CachePolicy::default(),
            Some("legacy") => CachePolicy::legacy(),
            _ => return Err(invalid("cache.policy must be \"cost-aware\" or \"legacy\"")),
        },
    };
    if let Some(cap) = c.get("cap") {
        let cap = cap
            .as_usize()
            .filter(|&n| (1..=MAX_WIRE_CACHE_CAP).contains(&n))
            .ok_or_else(|| {
                invalid(format!(
                    "cache.cap must be an integer in 1..={MAX_WIRE_CACHE_CAP}"
                ))
            })?;
        policy = policy.with_cap(cap);
    }
    if let Some(lw) = c.get("low_water") {
        // Bounded relative to the cap: low_water at (or clamped to)
        // cap-1 would make every sweep free exactly one entry, i.e. an
        // O(cap) sweep per insert — the hysteresis-defeating resource
        // abuse the cap bound exists to prevent on a shared server.
        let lw = lw
            .as_usize()
            .filter(|&n| n < policy.cap)
            .ok_or_else(|| invalid("cache.low_water must be an integer below cache.cap"))?;
        policy = policy.with_low_water(lw);
    }
    if let Some(s) = c.get("spill") {
        policy = policy.with_spill(
            s.as_bool()
                .ok_or_else(|| invalid("cache.spill must be a boolean"))?,
        );
    }
    if let Some(a) = c.get("cost_aware") {
        policy = policy.with_cost_aware(
            a.as_bool()
                .ok_or_else(|| invalid("cache.cost_aware must be a boolean"))?,
        );
    }
    Ok(policy)
}

/// The benchmark suite, built once per process (requests that name a
/// benchmark arrive in batches; rebuilding 80 tasks per line would be
/// pure hot-path waste).
fn suite() -> &'static [Benchmark] {
    static SUITE: OnceLock<Vec<Benchmark>> = OnceLock::new();
    SUITE.get_or_init(all_benchmarks)
}

fn decode_value(v: &Json) -> Result<Value, SickleError> {
    match v {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Str(s) => Ok(Value::Str(s.as_str().into())),
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.2e18 => Ok(Value::Int(*n as i64)),
        Json::Num(n) => Ok(Value::Float(*n)),
        _ => Err(invalid("table cells must be scalars")),
    }
}

/// Decodes one wire table. Two encodings are accepted, selected by the
/// optional `"format"` field:
///
/// * `"json"` (default): `"columns"` (array of names) + `"rows"` (array
///   of cell arrays);
/// * `"csv"`: `"data"` holding the full CSV text ([`crate::csv`] codec —
///   header row, quoted strings, value-preserving numbers). Ragged rows,
///   bad headers and malformed quoting surface as `invalid_request`.
pub(crate) fn decode_table(t: &Json, index: usize) -> Result<Table, SickleError> {
    match t.get("format").map(|f| (f, f.as_str())) {
        None => {}
        Some((_, Some("json"))) => {}
        Some((_, Some("csv"))) => {
            let data = t.get("data").and_then(Json::as_str).ok_or_else(|| {
                invalid(format!("csv table {} needs a \"data\" string", index + 1))
            })?;
            if t.get("columns").is_some() || t.get("rows").is_some() {
                return Err(invalid(format!(
                    "csv table {} must not also carry \"columns\"/\"rows\"",
                    index + 1
                )));
            }
            return crate::csv::parse_table(data)
                .map_err(|e| invalid(format!("table {}: {e}", index + 1)));
        }
        Some(_) => {
            return Err(invalid(format!(
                "table {}: \"format\" must be \"json\" or \"csv\"",
                index + 1
            )))
        }
    }
    let columns = t
        .get("columns")
        .and_then(Json::as_array)
        .ok_or_else(|| invalid(format!("table {} needs a \"columns\" array", index + 1)))?;
    let names: Vec<String> = columns
        .iter()
        .map(|c| {
            c.as_str()
                .map(str::to_string)
                .ok_or_else(|| invalid("column names must be strings"))
        })
        .collect::<Result<_, _>>()?;
    let rows_json = t
        .get("rows")
        .and_then(Json::as_array)
        .ok_or_else(|| invalid(format!("table {} needs a \"rows\" array", index + 1)))?;
    let mut rows = Vec::with_capacity(rows_json.len());
    for r in rows_json {
        let cells = r
            .as_array()
            .ok_or_else(|| invalid("each table row must be an array"))?;
        rows.push(
            cells
                .iter()
                .map(decode_value)
                .collect::<Result<Vec<Value>, _>>()?,
        );
    }
    Ok(Table::new(names, rows)?)
}

fn decode_demo(d: &Json) -> Result<Demo, SickleError> {
    let rows_json = d
        .as_array()
        .ok_or_else(|| invalid("\"demo\" must be an array of rows"))?;
    let mut rows: Vec<Vec<&str>> = Vec::with_capacity(rows_json.len());
    for r in rows_json {
        let cells = r
            .as_array()
            .ok_or_else(|| invalid("each demo row must be an array of formula strings"))?;
        rows.push(
            cells
                .iter()
                .map(|c| {
                    c.as_str()
                        .ok_or_else(|| invalid("demo cells must be formula strings"))
                })
                .collect::<Result<_, _>>()?,
        );
    }
    let borrowed: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
    Ok(Demo::parse(&borrowed)?)
}

/// Decodes one wire join key: an object with **1-based**
/// `left_table`/`left_col`/`right_table`/`right_col` (matching the
/// `T[row,col]` surface syntax of demonstrations).
fn decode_join_key(jk: &Json) -> Result<JoinKey, SickleError> {
    let field = |name: &str| {
        jk.get(name)
            .and_then(Json::as_usize)
            .filter(|&n| n >= 1)
            .ok_or_else(|| invalid(format!("join key needs a 1-based integer \"{name}\"")))
    };
    Ok(JoinKey {
        left_table: field("left_table")? - 1,
        left_col: field("left_col")? - 1,
        right_table: field("right_table")? - 1,
        right_col: field("right_col")? - 1,
    })
}

fn decode_budget(json: Option<&Json>) -> Result<Budget, SickleError> {
    let mut budget = Budget::default();
    let Some(b) = json else {
        return Ok(budget);
    };
    if let Some(t) = b.get("timeout_secs") {
        budget = budget.with_timeout(match t {
            Json::Null => None,
            _ => {
                let secs = t
                    .as_f64()
                    .filter(|s| s.is_finite() && *s >= 0.0)
                    .ok_or_else(|| invalid("budget.timeout_secs must be a number or null"))?;
                // try_: from_secs_f64 aborts the process on overflow.
                Some(Duration::try_from_secs_f64(secs).map_err(|_| {
                    invalid("budget.timeout_secs is too large (use null for unbounded)")
                })?)
            }
        });
    }
    if let Some(v) = b.get("max_visited") {
        budget = budget.with_max_visited(match v {
            Json::Null => None,
            _ => Some(
                v.as_usize()
                    .ok_or_else(|| invalid("budget.max_visited must be an integer or null"))?,
            ),
        });
    }
    if let Some(n) = b.get("max_solutions") {
        budget = budget.with_max_solutions(
            n.as_usize()
                .ok_or_else(|| invalid("budget.max_solutions must be an integer"))?,
        );
    }
    Ok(budget)
}

impl WireRequest {
    /// Decodes a request object.
    ///
    /// # Errors
    ///
    /// Returns [`SickleError::InvalidRequest`] for schema violations,
    /// [`SickleError::Table`] / [`SickleError::Parse`] for bad inline
    /// tables or demo formulas.
    pub fn from_json(json: &Json) -> Result<WireRequest, SickleError> {
        let id = json.get("id").cloned().unwrap_or(Json::Null);
        let mut benchmark = None;

        let mut request = match (json.get("benchmark"), json.get("tables")) {
            (Some(_), Some(_)) => {
                return Err(invalid("give either \"benchmark\" or \"tables\", not both"))
            }
            (Some(b), None) => {
                let bench_id = b
                    .as_usize()
                    .ok_or_else(|| invalid("\"benchmark\" must be a task id"))?;
                let bench = suite()
                    .iter()
                    .find(|bm| bm.id == bench_id)
                    .ok_or_else(|| invalid(format!("unknown benchmark id {bench_id}")))?;
                let seed = json
                    .get("seed")
                    .map(|s| {
                        s.as_usize()
                            .ok_or_else(|| invalid("\"seed\" must be an integer"))
                    })
                    .transpose()?
                    .unwrap_or(2022) as u64;
                let (task, _gen) = bench.task(seed).map_err(|e| SickleError::Internal {
                    message: format!("benchmark {bench_id} demo generation failed: {e:?}"),
                })?;
                benchmark = Some(bench_id);
                SynthRequest::from_task(task).with_search(bench.config())
            }
            (None, Some(tables_json)) => {
                let tables_json = tables_json
                    .as_array()
                    .ok_or_else(|| invalid("\"tables\" must be an array"))?;
                if tables_json.is_empty() {
                    return Err(invalid("\"tables\" must not be empty"));
                }
                let tables = tables_json
                    .iter()
                    .enumerate()
                    .map(|(i, t)| decode_table(t, i))
                    .collect::<Result<Vec<_>, _>>()?;
                let demo = decode_demo(
                    json.get("demo")
                        .ok_or_else(|| invalid("inline requests need a \"demo\""))?,
                )?;
                let enable_join = tables.len() > 1;
                let mut request = SynthRequest::new(tables, demo)
                    .with_search(SynthConfig::new().with_enable_join(enable_join));
                if let Some(jks) = json.get("join_keys") {
                    let jks = jks
                        .as_array()
                        .ok_or_else(|| invalid("\"join_keys\" must be an array"))?;
                    for jk in jks {
                        request = request.with_join_key(decode_join_key(jk)?);
                    }
                }
                if let Some(consts) = json.get("constants") {
                    let consts = consts
                        .as_array()
                        .ok_or_else(|| invalid("\"constants\" must be an array"))?;
                    request = request.with_constants(
                        consts
                            .iter()
                            .map(decode_value)
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                request
            }
            (None, None) => {
                return Err(invalid(
                    "a request needs either \"benchmark\" or \"tables\" + \"demo\"",
                ))
            }
        };

        if let Some(d) = json.get("max_depth") {
            request.search.max_depth = d
                .as_usize()
                .ok_or_else(|| invalid("\"max_depth\" must be an integer"))?;
        }
        if let Some(j) = json.get("enable_join") {
            request.search.enable_join = j
                .as_bool()
                .ok_or_else(|| invalid("\"enable_join\" must be a boolean"))?;
        }
        request.budget = decode_budget(json.get("budget"))?;
        if let Some(c) = json.get("cache") {
            request.search.cache = decode_cache_policy(c)?;
        }
        if let Some(a) = json.get("analyzer") {
            let name = a
                .as_str()
                .ok_or_else(|| invalid("\"analyzer\" must be a string"))?;
            request.analyzer = analyzer_by_name(name)
                .ok_or_else(|| invalid(format!("unknown analyzer \"{name}\"")))?;
        }
        if let Some(w) = json.get("workers") {
            request.workers = w
                .as_usize()
                .filter(|&n| (1..=MAX_WIRE_WORKERS).contains(&n))
                .ok_or_else(|| {
                    invalid(format!(
                        "\"workers\" must be an integer in 1..={MAX_WIRE_WORKERS}"
                    ))
                })?;
        }
        let progress = match json.get("progress") {
            None => false,
            Some(p) => p
                .as_bool()
                .ok_or_else(|| invalid("\"progress\" must be a boolean"))?,
        };
        if let Some(r) = json.get("retain") {
            request = request.with_retain(
                r.as_bool()
                    .ok_or_else(|| invalid("\"retain\" must be a boolean"))?,
            );
        }
        let prior = match json.get("prior") {
            None => None,
            Some(Json::Null) => return Err(invalid("\"prior\" must not be null")),
            Some(p) => {
                // An edit chain continues: the edited result is retained
                // so the *next* edit can name this request as its prior.
                request = request.with_retain(true);
                Some(p.clone())
            }
        };

        Ok(WireRequest {
            id,
            request,
            progress,
            benchmark,
            prior,
        })
    }
}

/// Encodes a successful response line.
pub fn response_ok(id: &Json, result: &SynthResult) -> Json {
    let stats = &result.stats;
    Json::Obj(vec![
        ("id".into(), id.clone()),
        ("status".into(), Json::str("ok")),
        (
            "solutions".into(),
            Json::Arr(
                result
                    .solutions
                    .iter()
                    .map(|q| Json::str(q.to_string()))
                    .collect(),
            ),
        ),
        ("timed_out".into(), Json::Bool(stats.timed_out)),
        (
            "stats".into(),
            Json::Obj(vec![
                ("visited".into(), Json::num(stats.visited as f64)),
                ("pruned".into(), Json::num(stats.pruned as f64)),
                (
                    "concrete_checked".into(),
                    Json::num(stats.concrete_checked as f64),
                ),
                ("expanded".into(), Json::num(stats.expanded as f64)),
                ("wall_s".into(), Json::num(stats.elapsed.as_secs_f64())),
                (
                    "time_analyze_s".into(),
                    Json::num(stats.time_analyze.as_secs_f64()),
                ),
                (
                    "time_eval_s".into(),
                    Json::num(stats.time_concrete.as_secs_f64()),
                ),
                (
                    "time_materialize_s".into(),
                    Json::num(stats.time_materialize.as_secs_f64()),
                ),
                (
                    "time_prefilter_s".into(),
                    Json::num(stats.time_prefilter.as_secs_f64()),
                ),
                (
                    "time_match_s".into(),
                    Json::num(stats.time_match.as_secs_f64()),
                ),
                (
                    "time_expand_s".into(),
                    Json::num(stats.time_expand.as_secs_f64()),
                ),
                (
                    "time_join_s".into(),
                    Json::num(stats.time_join.as_secs_f64()),
                ),
                ("join_rows".into(), Json::num(stats.join_rows as f64)),
                (
                    "cache_evictions".into(),
                    Json::num(stats.cache_evictions as f64),
                ),
                (
                    "cache_demotions".into(),
                    Json::num(stats.cache_demotions as f64),
                ),
                (
                    "cache_reevals".into(),
                    Json::num(stats.cache_reevals as f64),
                ),
                (
                    "cache_reeval_s".into(),
                    Json::num(stats.cache_reeval_time.as_secs_f64()),
                ),
                (
                    "reused_verdicts".into(),
                    Json::num(stats.reused_verdicts as f64),
                ),
                (
                    "invalidated_verdicts".into(),
                    Json::num(stats.invalidated_verdicts as f64),
                ),
                ("mem_bytes".into(), Json::num(stats.mem_bytes as f64)),
            ]),
        ),
    ])
}

/// Encodes a [`ProgressSnapshot`] as the `{"event":"progress",…}` object
/// streamed for [`sickle_core::SolutionEvent::Progress`] — live counters
/// plus the acceptance-stage time split (`time_materialize_s` /
/// `time_prefilter_s` / `time_match_s`), so an eval-path regression is
/// visible *during* a long search, not only in the final stats.
pub fn progress_json(p: &ProgressSnapshot) -> Json {
    Json::Obj(vec![
        ("event".into(), Json::str("progress")),
        ("visited".into(), Json::num(p.visited as f64)),
        ("pruned".into(), Json::num(p.pruned as f64)),
        (
            "concrete_checked".into(),
            Json::num(p.concrete_checked as f64),
        ),
        ("solutions".into(), Json::num(p.solutions as f64)),
        ("wall_s".into(), Json::num(p.elapsed.as_secs_f64())),
        (
            "time_materialize_s".into(),
            Json::num(p.time_materialize.as_secs_f64()),
        ),
        (
            "time_prefilter_s".into(),
            Json::num(p.time_prefilter.as_secs_f64()),
        ),
        ("time_match_s".into(), Json::num(p.time_match.as_secs_f64())),
        ("time_join_s".into(), Json::num(p.time_join.as_secs_f64())),
        ("join_rows".into(), Json::num(p.join_rows as f64)),
        (
            "cache_evictions".into(),
            Json::num(p.cache_evictions as f64),
        ),
        (
            "cache_demotions".into(),
            Json::num(p.cache_demotions as f64),
        ),
        ("cache_reevals".into(), Json::num(p.cache_reevals as f64)),
        (
            "cache_reeval_s".into(),
            Json::num(p.cache_reeval_time.as_secs_f64()),
        ),
        (
            "reused_verdicts".into(),
            Json::num(p.reused_verdicts as f64),
        ),
        (
            "invalidated_verdicts".into(),
            Json::num(p.invalidated_verdicts as f64),
        ),
        ("mem_bytes".into(), Json::num(p.mem_bytes as f64)),
    ])
}

/// Encodes an error response line.
pub fn response_error(id: &Json, kind: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("id".into(), id.clone()),
        ("status".into(), Json::str("error")),
        (
            "error".into(),
            Json::Obj(vec![
                ("kind".into(), Json::str(kind)),
                ("message".into(), Json::str(message)),
            ]),
        ),
    ])
}

/// Encodes a [`SickleError`] as the structured error response line
/// (`error.kind` = [`SickleError::kind`]). An [`SickleError::Overloaded`]
/// carrying a server-computed retry hint additionally gets an
/// `error.retry_after_ms` field so clients can pace their retry exactly
/// instead of guessing with exponential backoff.
pub fn error_response(id: &Json, e: &SickleError) -> Json {
    let mut response = response_error(id, e.kind(), &e.to_string());
    if let SickleError::Overloaded {
        retry_after_ms: Some(ms),
        ..
    } = e
    {
        if let Json::Obj(fields) = &mut response {
            for (name, value) in fields.iter_mut() {
                if name == "error" {
                    if let Json::Obj(err_fields) = value {
                        err_fields.push(("retry_after_ms".into(), Json::num(*ms as f64)));
                    }
                }
            }
        }
    }
    response
}

/// Encodes a line-level JSON parse failure (no decoded id to echo).
pub fn bad_json_response(e: &JsonError) -> Json {
    response_error(&Json::Null, "bad_json", &e.to_string())
}

/// Encodes the final success response for a decoded request:
/// [`response_ok`] plus, for suite requests ([`WireRequest::benchmark`]),
/// `solved`/`rank` of the ground-truth query among the returned
/// solutions.
pub fn finish_response(wire: &WireRequest, result: &SynthResult) -> Json {
    let mut response = response_ok(&wire.id, result);
    if let Some(b) = wire
        .benchmark
        .and_then(|bid| suite().iter().find(|bm| bm.id == bid))
    {
        let rank = result
            .solutions
            .iter()
            .position(|q| b.is_correct(q))
            .map(|i| i + 1);
        if let Json::Obj(fields) = &mut response {
            fields.push(("solved".into(), Json::Bool(rank.is_some())));
            fields.push((
                "rank".into(),
                rank.map_or(Json::Null, |n| Json::num(n as f64)),
            ));
        }
    }
    response
}

fn sickle_error_response(id: &Json, e: &SickleError) -> Json {
    error_response(id, e)
}

fn json_error_response(e: &JsonError) -> Json {
    bad_json_response(e)
}

/// Prepends the request id to an event object (events are streamed, so
/// every line must be attributable to its request).
pub(crate) fn with_id(id: &Json, event: Json) -> Json {
    match event {
        Json::Obj(mut fields) => {
            fields.insert(0, ("id".into(), id.clone()));
            Json::Obj(fields)
        }
        other => other,
    }
}

/// The full pipeline for one wire line: parse, decode, solve on the warm
/// `session`, encode. Never fails — problems become structured error
/// responses.
pub fn handle_line(session: &Session, line: &str) -> Json {
    handle_line_with(session, line, &mut |_| {})
}

/// [`handle_line`] with event streaming: for requests carrying
/// `"progress": true`, every found solution and progress snapshot is
/// passed to `emit` (as `{"id":…,"event":"solution"|"progress",…}`
/// objects, progress including the acceptance-stage time split) before
/// the final response is returned. Requests without the flag never call
/// `emit`.
pub fn handle_line_with(session: &Session, line: &str, emit: &mut dyn FnMut(Json)) -> Json {
    let json = match Json::parse(line) {
        Ok(json) => json,
        Err(e) => return json_error_response(&e),
    };
    let wire = match WireRequest::from_json(&json) {
        Ok(wire) => wire,
        Err(e) => return sickle_error_response(json.get("id").unwrap_or(&Json::Null), &e),
    };
    if wire.prior.is_some() {
        // Resolving a prior id needs the per-server request registry;
        // only `sickle-serve` keeps one across lines.
        return sickle_error_response(
            &wire.id,
            &invalid("\"prior\" requires sickle-serve (no prior-request registry on this path)"),
        );
    }
    if !wire.progress {
        return match session.solve(&wire.request) {
            Ok(result) => finish_response(&wire, &result),
            Err(e) => sickle_error_response(&wire.id, &e),
        };
    }
    let stream = match session.submit(wire.request.clone()) {
        Ok(stream) => stream,
        Err(e) => return sickle_error_response(&wire.id, &e),
    };
    for event in stream {
        match event {
            sickle_core::SolutionEvent::Solution { index, query } => emit(with_id(
                &wire.id,
                Json::Obj(vec![
                    ("event".into(), Json::str("solution")),
                    ("index".into(), Json::num(index as f64)),
                    ("query".into(), Json::str(query.to_string())),
                ]),
            )),
            sickle_core::SolutionEvent::Progress(p) => {
                emit(with_id(&wire.id, progress_json(&p)));
            }
            sickle_core::SolutionEvent::Done(result) => return finish_response(&wire, &result),
            sickle_core::SolutionEvent::Failed(e) => return sickle_error_response(&wire.id, &e),
            // Future event kinds stream nothing but must not end the loop.
            _ => {}
        }
    }
    sickle_error_response(
        &wire.id,
        &SickleError::Internal {
            message: "synthesis worker terminated without a result".to_string(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inline_request_line() -> String {
        concat!(
            r#"{"id": "r1", "#,
            r#""tables": [{"columns": ["region", "revenue"], "#,
            r#""rows": [["west", 10], ["west", 20], ["east", 5]]}], "#,
            r#""demo": [["T[1,1]", "sum(T[1,2], T[2,2])"], ["T[3,1]", "sum(T[3,2])"]], "#,
            r#""max_depth": 1, "#,
            r#""budget": {"max_solutions": 3, "max_visited": 50000}}"#
        )
        .to_string()
    }

    #[test]
    fn inline_request_solves_end_to_end() {
        let session = Session::new();
        let response = handle_line(&session, &inline_request_line());
        assert_eq!(
            response.get("status").and_then(Json::as_str),
            Some("ok"),
            "{}",
            response.render()
        );
        assert_eq!(response.get("id").and_then(Json::as_str), Some("r1"));
        let solutions = response.get("solutions").and_then(Json::as_array).unwrap();
        assert!(!solutions.is_empty());
        assert!(solutions[0].as_str().unwrap().contains("group"));
        assert_eq!(
            response.get("timed_out").and_then(Json::as_bool),
            Some(false)
        );
        // The response line is itself valid JSON.
        assert!(Json::parse(&response.render()).is_ok());
    }

    #[test]
    fn benchmark_request_decodes_with_suite_config() {
        let wire = WireRequest::from_json(
            &Json::parse(r#"{"benchmark": 1, "budget": {"timeout_secs": 5}}"#).unwrap(),
        )
        .unwrap();
        assert!(!wire.request.task.inputs.is_empty());
        assert_eq!(wire.request.budget.timeout, Some(Duration::from_secs(5)));
    }

    #[test]
    fn prior_and_retain_decode() {
        // "retain" alone: opt into retention, no prior.
        let wire =
            WireRequest::from_json(&Json::parse(r#"{"benchmark": 1, "retain": true}"#).unwrap())
                .unwrap();
        assert!(wire.request.retain);
        assert!(wire.prior.is_none());
        // "prior" carries the raw id and implies retention (so the next
        // edit in the chain can name *this* request).
        let wire =
            WireRequest::from_json(&Json::parse(r#"{"benchmark": 1, "prior": "r7"}"#).unwrap())
                .unwrap();
        assert!(wire.request.retain);
        assert_eq!(wire.prior.as_ref().map(Json::render), Some("\"r7\"".into()));
        // Neither field: retention stays off (no hidden memory growth).
        let wire = WireRequest::from_json(&Json::parse(r#"{"benchmark": 1}"#).unwrap()).unwrap();
        assert!(!wire.request.retain);
    }

    #[test]
    fn structured_errors_for_bad_lines() {
        let session = Session::new();
        let cases = [
            ("{not json", "bad_json"),
            (r#"{"id": 1}"#, "invalid_request"),
            (r#"{"id": 1, "benchmark": 999}"#, "invalid_request"),
            (
                r#"{"benchmark": 1, "analyzer": "quantum"}"#,
                "invalid_request",
            ),
            (
                r#"{"tables": [{"columns": ["a"], "rows": [["x"], ["y", "z"]]}], "demo": [["T[1,1]"]]}"#,
                "table",
            ),
            (
                r#"{"tables": [{"columns": ["a"], "rows": [["x"]]}], "demo": [["sum(("]]}"#,
                "parse",
            ),
            (
                r#"{"tables": [{"columns": ["a"], "rows": [["x"]]}], "demo": [["T[5,5]"]]}"#,
                "invalid_request",
            ),
            // Overflowing timeout must be a structured error, not a
            // Duration::from_secs_f64 process abort.
            (
                r#"{"benchmark": 1, "budget": {"timeout_secs": 1e20}}"#,
                "invalid_request",
            ),
            // Absurd worker counts are rejected before any allocation.
            (
                r#"{"benchmark": 1, "workers": 1000000000}"#,
                "invalid_request",
            ),
            // Cache-policy schema violations are structured errors too.
            (
                r#"{"benchmark": 1, "cache": {"policy": "lru"}}"#,
                "invalid_request",
            ),
            (
                r#"{"benchmark": 1, "cache": {"cap": 0}}"#,
                "invalid_request",
            ),
            (
                r#"{"benchmark": 1, "cache": {"cap": 100000000000}}"#,
                "invalid_request",
            ),
            (
                r#"{"benchmark": 1, "cache": {"spill": "yes"}}"#,
                "invalid_request",
            ),
            // low_water at/above the cap would defeat the sweep
            // hysteresis (an O(cap) sweep per insert on a shared server).
            (
                r#"{"benchmark": 1, "cache": {"cap": 64, "low_water": 64}}"#,
                "invalid_request",
            ),
            // "prior" needs the id registry only sickle-serve keeps.
            (r#"{"benchmark": 1, "prior": "r0"}"#, "invalid_request"),
            (r#"{"benchmark": 1, "prior": null}"#, "invalid_request"),
            (r#"{"benchmark": 1, "retain": "yes"}"#, "invalid_request"),
        ];
        for (line, expected_kind) in cases {
            let response = handle_line(&session, line);
            assert_eq!(
                response.get("status").and_then(Json::as_str),
                Some("error"),
                "{line}"
            );
            let kind = response
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str);
            assert_eq!(kind, Some(expected_kind), "{line}");
        }
    }

    #[test]
    fn response_stats_carry_the_acceptance_split() {
        let session = Session::new();
        let response = handle_line(&session, &inline_request_line());
        let stats = response.get("stats").expect("stats object");
        for field in [
            "time_eval_s",
            "time_materialize_s",
            "time_prefilter_s",
            "time_match_s",
            "time_join_s",
            "join_rows",
            "cache_evictions",
            "cache_demotions",
            "cache_reevals",
            "reused_verdicts",
            "invalidated_verdicts",
        ] {
            assert!(
                stats.get(field).and_then(Json::as_f64).is_some(),
                "missing {field}: {}",
                response.render()
            );
        }
        // The split sums to (at most) the total, up to timer granularity.
        let f = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap();
        assert!(
            f("time_materialize_s") + f("time_prefilter_s") + f("time_match_s")
                <= f("time_eval_s") + 1e-6
        );
    }

    #[test]
    fn progress_requests_stream_events_before_the_response() {
        let session = Session::new();
        let line =
            inline_request_line().replace("\"max_depth\"", "\"progress\": true, \"max_depth\"");
        let mut events = Vec::new();
        let response = handle_line_with(&session, &line, &mut |e| events.push(e));
        assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
        assert!(!events.is_empty(), "progress request streamed no events");
        let kinds: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("event").and_then(Json::as_str))
            .collect();
        assert!(kinds.contains(&"solution"), "{kinds:?}");
        assert!(kinds.contains(&"progress"), "{kinds:?}");
        for e in &events {
            // Every event line is attributable and valid JSON.
            assert_eq!(e.get("id").and_then(Json::as_str), Some("r1"));
            assert!(Json::parse(&e.render()).is_ok());
            if e.get("event").and_then(Json::as_str) == Some("progress") {
                for field in [
                    "time_materialize_s",
                    "time_prefilter_s",
                    "time_match_s",
                    "time_join_s",
                    "join_rows",
                ] {
                    assert!(e.get(field).is_some(), "{}", e.render());
                }
            }
        }
        // Without the flag, the sink is never called.
        let mut silent = Vec::new();
        let response = handle_line_with(&session, &inline_request_line(), &mut |e| silent.push(e));
        assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
        assert!(silent.is_empty());
    }

    #[test]
    fn cache_policy_decodes_with_overrides() {
        let wire = WireRequest::from_json(
            &Json::parse(
                r#"{"benchmark": 1, "cache": {"policy": "legacy", "cap": 64, "spill": true}}"#,
            )
            .unwrap(),
        )
        .unwrap();
        let policy = wire.request.search.cache;
        assert!(!policy.cost_aware, "legacy base");
        // The override decodes (the legacy sweep itself ignores spill —
        // it reproduces v0.3 exactly — but the knob must round-trip so
        // "legacy ordering + spill" stays expressible via cost_aware).
        assert!(policy.spill, "explicit override decodes");
        assert_eq!(policy.cap, 64);
        assert!(policy.low_water <= 32, "low water scales with the cap");
        // Default when absent.
        let wire = WireRequest::from_json(&Json::parse(r#"{"benchmark": 1}"#).unwrap()).unwrap();
        assert_eq!(wire.request.search.cache, CachePolicy::default());
        // A tiny-cap request still answers (and reports its churn).
        let session = Session::new();
        let line = inline_request_line()
            .replace("\"max_depth\"", "\"cache\": {\"cap\": 4}, \"max_depth\"");
        let response = handle_line(&session, &line);
        assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
        let evictions = response
            .get("stats")
            .and_then(|s| s.get("cache_evictions"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!(evictions > 0.0, "{}", response.render());
    }

    #[test]
    fn benchmark_responses_carry_solved_and_rank() {
        let session = Session::new();
        let response = handle_line(
            &session,
            r#"{"id": 7, "benchmark": 1, "budget": {"timeout_secs": null, "max_visited": 20000}}"#,
        );
        assert_eq!(
            response.get("status").and_then(Json::as_str),
            Some("ok"),
            "{}",
            response.render()
        );
        assert_eq!(response.get("solved").and_then(Json::as_bool), Some(true));
        assert_eq!(response.get("rank").and_then(Json::as_f64), Some(1.0));
        // Inline requests have no ground truth; the fields are absent.
        let inline = handle_line(&session, &inline_request_line());
        assert_eq!(inline.get("status").and_then(Json::as_str), Some("ok"));
        assert!(inline.get("solved").is_none());
        assert!(inline.get("rank").is_none());
    }

    #[test]
    fn csv_tables_decode_like_json_tables() {
        let session = Session::new();
        let csv_line = concat!(
            r#"{"id": "c1", "#,
            r#""tables": [{"format": "csv", "data": "region,revenue\nwest,10\nwest,20\neast,5\n"}], "#,
            r#""demo": [["T[1,1]", "sum(T[1,2], T[2,2])"], ["T[3,1]", "sum(T[3,2])"]], "#,
            r#""max_depth": 1, "#,
            r#""budget": {"max_solutions": 3, "max_visited": 50000}}"#
        );
        let from_csv = handle_line(&session, csv_line);
        let from_json = handle_line(&session, &inline_request_line());
        assert_eq!(
            from_csv.get("status").and_then(Json::as_str),
            Some("ok"),
            "{}",
            from_csv.render()
        );
        // Identical tables + demo ⇒ identical solutions, either encoding.
        assert_eq!(
            from_csv.get("solutions").map(Json::render),
            from_json.get("solutions").map(Json::render)
        );
        // Quoted numerics stay strings: "10" is not summable, so the
        // same demo over a quoted column must fail to find solutions
        // rather than silently coercing.
        let quoted = decode_table(
            &Json::parse(r#"{"format": "csv", "data": "a,b\nx,\"10\"\n"}"#).unwrap(),
            0,
        )
        .unwrap();
        assert_eq!(quoted.get(0, 1), Some(&Value::Str("10".into())));
    }

    #[test]
    fn csv_table_errors_are_invalid_request() {
        let session = Session::new();
        let cases = [
            // Ragged CSV row.
            r#"{"tables": [{"format": "csv", "data": "a,b\n1,2\n3\n"}], "demo": [["T[1,1]"]]}"#,
            // Empty header name.
            r#"{"tables": [{"format": "csv", "data": "a,,b\n1,2,3\n"}], "demo": [["T[1,1]"]]}"#,
            // Unterminated quote.
            r#"{"tables": [{"format": "csv", "data": "a\n\"open\n"}], "demo": [["T[1,1]"]]}"#,
            // Missing data payload.
            r#"{"tables": [{"format": "csv"}], "demo": [["T[1,1]"]]}"#,
            // Both encodings at once.
            r#"{"tables": [{"format": "csv", "data": "a\n1\n", "rows": []}], "demo": [["T[1,1]"]]}"#,
            // Unknown format.
            r#"{"tables": [{"format": "tsv", "data": "a\n1\n"}], "demo": [["T[1,1]"]]}"#,
        ];
        for line in cases {
            let response = handle_line(&session, line);
            let kind = response
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str);
            assert_eq!(kind, Some("invalid_request"), "{line}");
        }
    }

    #[test]
    fn join_keys_are_one_based() {
        let jk = decode_join_key(
            &Json::parse(r#"{"left_table":1,"left_col":2,"right_table":2,"right_col":1}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(
            jk,
            JoinKey {
                left_table: 0,
                left_col: 1,
                right_table: 1,
                right_col: 0,
            }
        );
        assert!(decode_join_key(&Json::parse(r#"{"left_table":0}"#).unwrap()).is_err());
    }
}
