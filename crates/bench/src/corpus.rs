//! The corpus subsystem: a **generate → admit → freeze → run** pipeline
//! that grows the benchmark surface beyond the 80 hand-ported tasks
//! without giving up byte-level determinism.
//!
//! * **Generate** — [`sickle_benchmarks::generate_candidate`] derives a
//!   candidate task (randomized schema, bootstrap-resampled inputs,
//!   ground truth) from one seed; the demo comes from the §5.1
//!   `generate_demo` procedure under the same seed.
//! * **Admit** — [`admit`] runs the candidate on a warm [`Session`]
//!   under a bounded [`Budget`] and keeps it only when it is
//!   solvable-in-budget, its top-ranked solution is correct and
//!   extensionally unambiguous, its demo round-trips through the wire
//!   formula syntax, and a second independent run (fresh session, via
//!   the wire decoder) reproduces the exact solution list. Rejections
//!   carry one of [`REJECT_REASONS`].
//! * **Freeze** — [`freeze_corpus`] writes admitted tasks as versioned
//!   bundles under `corpus/v1/`: a manifest with schema version and
//!   per-task category/seed/content hash, tables as CSV or JSON, the
//!   demo as formula strings, and the expected solution list.
//! * **Run** — [`run_corpus`] executes any [`CorpusFilters`] slice
//!   through the existing wire path ([`crate::wire::handle_line`]) on a
//!   warm session, compares against the frozen expectations, and
//!   produces a deterministic dump + digest ([`render_dump`],
//!   [`corpus_digest`]) that CI can `cmp` across runs, plus
//!   `BENCH_corpus.json` ([`results_json`]).
//!
//! Determinism contract: a task id embeds its seed and the seed fully
//! determines the bundle bytes; two freezes of the same seed/count are
//! byte-identical, and two runs over the same frozen corpus produce
//! byte-identical dumps.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use sickle_benchmarks::{
    contains_column_subtable, demo_is_consistent_with_gt, generate_demo, CandidateTask,
};
use sickle_core::{evaluate, Budget, JoinKey, Query, Session, SynthConfig, SynthRequest};
use sickle_provenance::Demo;
use sickle_table::{Table, Value};

use crate::json::Json;

/// Corpus manifest schema version.
pub const CORPUS_SCHEMA: &str = "sickle-corpus/v1";
/// Per-task bundle schema version.
pub const TASK_SCHEMA: &str = "sickle-corpus-task/v1";
/// `BENCH_corpus.json` schema version.
pub const RESULTS_SCHEMA: &str = "sickle-bench/corpus/v1";

/// Every admission-rejection reason, in tally order.
pub const REJECT_REASONS: [&str; 6] = [
    "demogen_failed",
    "unserializable",
    "unsolved",
    "not_top",
    "ambiguous_top",
    "unstable",
];

/// On-disk table encoding of a bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableFormat {
    /// `tableN.json`: `{"columns": […], "rows": [[…]]}`.
    Json,
    /// `tableN.csv`: the [`crate::csv`] codec.
    Csv,
}

impl TableFormat {
    /// The manifest / CLI label.
    pub fn label(self) -> &'static str {
        match self {
            TableFormat::Json => "json",
            TableFormat::Csv => "csv",
        }
    }

    /// Inverse of [`TableFormat::label`].
    pub fn from_label(s: &str) -> Option<TableFormat> {
        match s {
            "json" => Some(TableFormat::Json),
            "csv" => Some(TableFormat::Csv),
            _ => None,
        }
    }
}

/// The search budget frozen into every bundle (admission and every later
/// run use the same bounds, so expectations stay comparable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusBudget {
    /// Visit bound (`Budget::with_max_visited`).
    pub max_visited: usize,
    /// Stop after this many consistent solutions.
    pub max_solutions: usize,
}

impl Default for CorpusBudget {
    fn default() -> Self {
        CorpusBudget {
            max_visited: 60_000,
            max_solutions: 10,
        }
    }
}

/// An admitted, freezable task bundle.
#[derive(Debug, Clone)]
pub struct TaskBundle {
    /// Task id: `<category>-<seed>`, filesystem-safe, embeds the seed.
    pub id: String,
    /// The generation seed (fully determines the bundle).
    pub seed: u64,
    /// Family label ([`sickle_benchmarks::CorpusCategory::label`]).
    pub category: String,
    /// Table encoding on disk and over the wire.
    pub format: TableFormat,
    /// Synthesis inputs (the demo-sampled tables the refs point into).
    pub tables: Vec<Table>,
    /// The demonstration as wire formula strings.
    pub demo_rows: Vec<Vec<String>>,
    /// Join-key hints (empty for single-table tasks).
    pub join_keys: Vec<JoinKey>,
    /// Extra constants shipped with the request (usually empty).
    pub constants: Vec<Value>,
    /// Search depth.
    pub max_depth: usize,
    /// Whether join skeletons are enabled.
    pub enable_join: bool,
    /// The frozen search budget.
    pub budget: CorpusBudget,
    /// Expected solutions (rank order, rendered), from admission.
    pub expected: Vec<String>,
    /// Candidates visited during admission (determinism witness).
    pub visited: usize,
    /// Candidates pruned during admission.
    pub pruned: usize,
}

/// Why a candidate was rejected.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// One of [`REJECT_REASONS`].
    pub reason: &'static str,
    /// Human-readable context.
    pub detail: String,
}

fn reject(reason: &'static str, detail: impl Into<String>) -> Rejection {
    Rejection {
        reason,
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

/// Builds the synthesis request exactly as the wire decoder would build it
/// from this bundle's JSON line — admission and replay must search the
/// same space or the frozen expectations are fiction.
fn build_request(
    tables: Vec<Table>,
    demo: Demo,
    join_keys: &[JoinKey],
    constants: &[Value],
    max_depth: usize,
    enable_join: bool,
    budget: &CorpusBudget,
) -> SynthRequest {
    let mut request = SynthRequest::new(tables, demo).with_search(
        SynthConfig::new()
            .with_enable_join(enable_join)
            .with_max_depth(max_depth),
    );
    for jk in join_keys {
        request = request.with_join_key(*jk);
    }
    if !constants.is_empty() {
        request = request.with_constants(constants.to_vec());
    }
    request.budget = Budget::default()
        .with_timeout(None)
        .with_max_visited(Some(budget.max_visited))
        .with_max_solutions(budget.max_solutions);
    request
}

/// Distinct-value set of one column.
fn col_set(t: &Table, c: usize) -> BTreeSet<Value> {
    (0..t.n_rows()).map(|r| t.row(r)[c].clone()).collect()
}

/// Whether `other` expresses the same extensional answer as `top`: some
/// injective mapping of `top`'s columns into `other`'s columns makes the
/// *distinct-row sets* equal. This is deliberately weaker than
/// [`contains_column_subtable`] (which demands equal row counts): a
/// `partition` that broadcasts a group aggregate to every source row
/// agrees with the `group` it shadows, while a same-size solution keyed
/// on a different column genuinely disagrees.
fn extensionally_agrees(top: &Table, other: &Table) -> bool {
    let k = top.n_cols();
    if other.n_cols() < k {
        return false;
    }
    let target: BTreeSet<Vec<Value>> = (0..top.n_rows()).map(|r| top.row(r).to_vec()).collect();
    let top_sets: Vec<BTreeSet<Value>> = (0..k).map(|c| col_set(top, c)).collect();
    let other_sets: Vec<BTreeSet<Value>> = (0..other.n_cols()).map(|c| col_set(other, c)).collect();
    let candidates: Vec<Vec<usize>> = top_sets
        .iter()
        .map(|ts| {
            (0..other.n_cols())
                .filter(|&oc| other_sets[oc] == *ts)
                .collect()
        })
        .collect();

    fn assign(
        j: usize,
        candidates: &[Vec<usize>],
        used: &mut Vec<bool>,
        chosen: &mut Vec<usize>,
        other: &Table,
        target: &BTreeSet<Vec<Value>>,
    ) -> bool {
        if j == candidates.len() {
            let projected: BTreeSet<Vec<Value>> = (0..other.n_rows())
                .map(|r| chosen.iter().map(|&c| other.row(r)[c].clone()).collect())
                .collect();
            return projected == *target;
        }
        for &oc in &candidates[j] {
            if used[oc] {
                continue;
            }
            used[oc] = true;
            chosen.push(oc);
            if assign(j + 1, candidates, used, chosen, other, target) {
                return true;
            }
            chosen.pop();
            used[oc] = false;
        }
        false
    }

    let mut used = vec![false; other.n_cols()];
    let mut chosen = Vec::with_capacity(k);
    assign(0, &candidates, &mut used, &mut chosen, other, &target)
}

/// Whether a value survives a JSON number round trip with its storage
/// representation intact (whole floats come back as ints).
fn json_roundtrip_safe(v: &Value) -> bool {
    match v {
        Value::Float(x) => x.is_finite() && x.fract() != 0.0,
        _ => true,
    }
}

/// Runs the admission gates on one candidate. The `session` should be a
/// warm corpus-generation session (reused across candidates); the
/// stability gate runs on its own fresh session through the wire decoder,
/// so warm-state leakage or demo-serialization drift is caught here and
/// not at corpus-run time.
pub fn admit(
    cand: &CandidateTask,
    budget: &CorpusBudget,
    session: &Session,
) -> Result<TaskBundle, Rejection> {
    // Gate 1: the §5.1 demo generator must succeed and be consistent.
    let gen = generate_demo(&cand.inputs, &cand.q_gt, &cand.out_cols, cand.seed)
        .map_err(|e| reject("demogen_failed", e.to_string()))?;
    if !demo_is_consistent_with_gt(&gen, &cand.q_gt) {
        return Err(reject(
            "demogen_failed",
            "demo inconsistent with ground truth",
        ));
    }

    // Gate 2: the demo must round-trip through the wire formula syntax
    // byte-for-byte — frozen bundles store formulas, not ASTs.
    let demo_rows: Vec<Vec<String>> = (0..gen.demo.n_rows())
        .map(|r| {
            (0..gen.demo.n_cols())
                .map(|c| gen.demo.cell(r, c).to_string())
                .collect()
        })
        .collect();
    {
        let rows: Vec<Vec<&str>> = demo_rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let borrowed: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
        match Demo::parse(&borrowed) {
            Ok(parsed) if parsed == gen.demo => {}
            Ok(_) => return Err(reject("unserializable", "demo re-parses differently")),
            Err(e) => return Err(reject("unserializable", e.to_string())),
        }
    }

    // Gate 3: solvable in budget, with the ground truth's answer on top.
    let request = build_request(
        gen.inputs.clone(),
        gen.demo.clone(),
        &cand.join_keys,
        &[],
        cand.max_depth,
        cand.enable_join,
        budget,
    );
    let result = session
        .solve(&request)
        .map_err(|e| reject("unsolved", e.to_string()))?;
    if result.solutions.is_empty() {
        return Err(reject("unsolved", "no consistent query within budget"));
    }
    let reference = evaluate(&cand.q_gt, &gen.inputs)
        .map_err(|e| reject("demogen_failed", e.to_string()))?
        .project(&cand.out_cols);
    let outs: Vec<Option<Table>> = result
        .solutions
        .iter()
        .map(|q| evaluate(q, &gen.inputs).ok())
        .collect();
    let correct = |i: usize| {
        outs[i]
            .as_ref()
            .is_some_and(|o| contains_column_subtable(o, &reference))
    };
    let n = result.solutions.len();
    if !(0..n).any(correct) {
        return Err(reject(
            "unsolved",
            "no returned solution matches the ground truth",
        ));
    }
    if !correct(0) {
        let rank = (0..n).position(correct).unwrap() + 1;
        return Err(reject(
            "not_top",
            format!(
                "ground truth at rank {rank}, behind: {}",
                result.solutions[..rank - 1]
                    .iter()
                    .map(Query::to_string)
                    .collect::<Vec<_>>()
                    .join(" | ")
            ),
        ));
    }

    // Gate 4: the top rank must be extensionally unambiguous — every
    // other minimal-size solution must express the same answer.
    let top_size = result.solutions[0].size();
    let top_out = outs[0].as_ref().expect("correct top evaluated");
    for (i, out) in outs.iter().enumerate().take(n).skip(1) {
        if result.solutions[i].size() != top_size {
            continue;
        }
        let agrees = out
            .as_ref()
            .is_some_and(|o| extensionally_agrees(top_out, o));
        if !agrees {
            return Err(reject(
                "ambiguous_top",
                format!("rank-tied disagreeing solution: {}", result.solutions[i]),
            ));
        }
    }

    // Freeze the bundle in memory. Whole floats cannot round-trip through
    // JSON number encoding, so such tables are forced onto the CSV path.
    let json_safe = gen
        .inputs
        .iter()
        .all(|t| (0..t.n_rows()).all(|r| t.row(r).iter().all(json_roundtrip_safe)));
    let format = if !json_safe || cand.seed.is_multiple_of(2) {
        TableFormat::Csv
    } else {
        TableFormat::Json
    };
    let expected: Vec<String> = result.solutions.iter().map(Query::to_string).collect();
    let bundle = TaskBundle {
        id: format!("{}-{:05}", cand.category.label(), cand.seed),
        seed: cand.seed,
        category: cand.category.label().to_string(),
        format,
        tables: gen.inputs.clone(),
        demo_rows,
        join_keys: cand.join_keys.clone(),
        constants: Vec::new(),
        max_depth: cand.max_depth,
        enable_join: cand.enable_join,
        budget: *budget,
        expected,
        visited: result.stats.visited,
        pruned: result.stats.pruned,
    };

    // Gate 5: stability — an independent run on a fresh session, decoded
    // from the bundle's own wire line, must reproduce the solution list.
    let line =
        wire_line(&bundle, &Json::str(&bundle.id)).map_err(|e| reject("unserializable", e))?;
    let fresh = Session::new();
    let response = crate::wire::handle_line(&fresh, &line);
    let replayed: Vec<String> = response
        .get("solutions")
        .and_then(Json::as_array)
        .map(|qs| {
            qs.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    if response.get("status").and_then(Json::as_str) != Some("ok") {
        let msg = response
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("wire replay failed");
        return Err(reject("unstable", msg.to_string()));
    }
    if replayed != bundle.expected {
        return Err(reject(
            "unstable",
            "wire replay produced a different solution list",
        ));
    }
    Ok(bundle)
}

// ---------------------------------------------------------------------------
// Wire encoding
// ---------------------------------------------------------------------------

fn value_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::num(*i as f64),
        Value::Float(x) => Json::num(*x),
        Value::Str(s) => Json::str(s.as_ref()),
    }
}

fn table_json(t: &Table, format: TableFormat) -> Result<Json, String> {
    match format {
        TableFormat::Json => {
            let columns = Json::Arr(t.names().iter().map(Json::str).collect());
            let rows = Json::Arr(
                (0..t.n_rows())
                    .map(|r| Json::Arr(t.row(r).iter().map(value_json).collect()))
                    .collect(),
            );
            Ok(Json::Obj(vec![
                ("columns".into(), columns),
                ("rows".into(), rows),
            ]))
        }
        TableFormat::Csv => {
            let data = crate::csv::render_table(t).map_err(|e| e.to_string())?;
            Ok(Json::Obj(vec![
                ("format".into(), Json::str("csv")),
                ("data".into(), Json::Str(data)),
            ]))
        }
    }
}

fn join_key_json(jk: &JoinKey) -> Json {
    // 1-based on the wire, matching the T[row,col] surface syntax.
    Json::Obj(vec![
        ("left_table".into(), Json::num((jk.left_table + 1) as f64)),
        ("left_col".into(), Json::num((jk.left_col + 1) as f64)),
        ("right_table".into(), Json::num((jk.right_table + 1) as f64)),
        ("right_col".into(), Json::num((jk.right_col + 1) as f64)),
    ])
}

fn budget_json(b: &CorpusBudget) -> Json {
    Json::Obj(vec![
        ("timeout_secs".into(), Json::Null),
        ("max_visited".into(), Json::num(b.max_visited as f64)),
        ("max_solutions".into(), Json::num(b.max_solutions as f64)),
    ])
}

fn demo_json(rows: &[Vec<String>]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| Json::Arr(r.iter().map(Json::str).collect()))
            .collect(),
    )
}

/// Renders the bundle as one self-contained wire request line (the same
/// line `sickle-corpus run` feeds to [`crate::wire::handle_line`] and
/// `sickle-shard --corpus` ships to remote serve processes).
///
/// # Errors
///
/// Returns a message if a table cannot be rendered in the bundle's
/// format (non-finite floats in CSV).
pub fn wire_line(bundle: &TaskBundle, id: &Json) -> Result<String, String> {
    let tables = bundle
        .tables
        .iter()
        .map(|t| table_json(t, bundle.format))
        .collect::<Result<Vec<_>, _>>()?;
    let mut fields = vec![
        ("id".to_string(), id.clone()),
        ("tables".to_string(), Json::Arr(tables)),
        ("demo".to_string(), demo_json(&bundle.demo_rows)),
    ];
    if !bundle.join_keys.is_empty() {
        fields.push((
            "join_keys".into(),
            Json::Arr(bundle.join_keys.iter().map(join_key_json).collect()),
        ));
    }
    if !bundle.constants.is_empty() {
        fields.push((
            "constants".into(),
            Json::Arr(bundle.constants.iter().map(value_json).collect()),
        ));
    }
    fields.push(("max_depth".into(), Json::num(bundle.max_depth as f64)));
    fields.push(("enable_join".into(), Json::Bool(bundle.enable_join)));
    fields.push(("budget".into(), budget_json(&bundle.budget)));
    Ok(Json::Obj(fields).render())
}

// ---------------------------------------------------------------------------
// Freeze / load
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn table_file_name(index: usize, format: TableFormat) -> String {
    format!("table{}.{}", index + 1, format.label())
}

fn table_file_bytes(t: &Table, format: TableFormat) -> Result<String, String> {
    match format {
        TableFormat::Csv => crate::csv::render_table(t).map_err(|e| e.to_string()),
        TableFormat::Json => {
            let json = table_json(t, TableFormat::Json)?;
            Ok(format!("{}\n", json.render()))
        }
    }
}

fn task_json(bundle: &TaskBundle) -> Json {
    let tables = Json::Arr(
        (0..bundle.tables.len())
            .map(|i| {
                Json::Obj(vec![(
                    "file".into(),
                    Json::str(table_file_name(i, bundle.format)),
                )])
            })
            .collect(),
    );
    let mut fields = vec![
        ("schema".to_string(), Json::str(TASK_SCHEMA)),
        ("id".to_string(), Json::str(&bundle.id)),
        ("seed".to_string(), Json::num(bundle.seed as f64)),
        ("category".to_string(), Json::str(&bundle.category)),
        ("format".to_string(), Json::str(bundle.format.label())),
        ("max_depth".to_string(), Json::num(bundle.max_depth as f64)),
        ("enable_join".to_string(), Json::Bool(bundle.enable_join)),
    ];
    if !bundle.join_keys.is_empty() {
        fields.push((
            "join_keys".into(),
            Json::Arr(bundle.join_keys.iter().map(join_key_json).collect()),
        ));
    }
    if !bundle.constants.is_empty() {
        fields.push((
            "constants".into(),
            Json::Arr(bundle.constants.iter().map(value_json).collect()),
        ));
    }
    fields.push(("budget".into(), budget_json(&bundle.budget)));
    fields.push(("tables".into(), tables));
    fields.push(("demo".into(), demo_json(&bundle.demo_rows)));
    fields.push((
        "expected".into(),
        Json::Obj(vec![
            (
                "solutions".into(),
                Json::Arr(bundle.expected.iter().map(Json::str).collect()),
            ),
            ("visited".into(), Json::num(bundle.visited as f64)),
            ("pruned".into(), Json::num(bundle.pruned as f64)),
        ]),
    ));
    Json::Obj(fields)
}

/// Content hash of a bundle: FNV-1a 64 over the task.json bytes then each
/// table file's bytes, in order.
pub fn bundle_hash(bundle: &TaskBundle) -> Result<u64, String> {
    let mut h = fnv1a64(
        FNV_OFFSET,
        format!("{}\n", task_json(bundle).render()).as_bytes(),
    );
    for t in &bundle.tables {
        h = fnv1a64(h, table_file_bytes(t, bundle.format)?.as_bytes());
    }
    Ok(h)
}

/// Writes the corpus to `dir`: `manifest.json` plus one
/// `tasks/<id>/` bundle per admitted task. Existing files are
/// overwritten; two freezes of the same generation are byte-identical.
///
/// # Errors
///
/// I/O failures, or a bundle whose tables cannot be rendered.
pub fn freeze_corpus(
    dir: &Path,
    seed: u64,
    count: usize,
    budget: &CorpusBudget,
    admitted: &[TaskBundle],
    tally: &BTreeMap<&'static str, usize>,
) -> io::Result<()> {
    let render_err = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
    std::fs::create_dir_all(dir.join("tasks"))?;
    let mut entries = Vec::new();
    for bundle in admitted {
        let task_dir = dir.join("tasks").join(&bundle.id);
        std::fs::create_dir_all(&task_dir)?;
        let task_text = format!("{}\n", task_json(bundle).render());
        std::fs::write(task_dir.join("task.json"), &task_text)?;
        for (i, t) in bundle.tables.iter().enumerate() {
            let bytes = table_file_bytes(t, bundle.format).map_err(render_err)?;
            std::fs::write(task_dir.join(table_file_name(i, bundle.format)), bytes)?;
        }
        let hash = bundle_hash(bundle).map_err(render_err)?;
        entries.push(Json::Obj(vec![
            ("id".into(), Json::str(&bundle.id)),
            ("seed".into(), Json::num(bundle.seed as f64)),
            ("category".into(), Json::str(&bundle.category)),
            ("format".into(), Json::str(bundle.format.label())),
            ("hash".into(), Json::str(format!("{hash:016x}"))),
            ("path".into(), Json::str(format!("tasks/{}", bundle.id))),
        ]));
    }
    let rejected = Json::Obj(
        tally
            .iter()
            .map(|(reason, n)| (reason.to_string(), Json::num(*n as f64)))
            .collect(),
    );
    let manifest = Json::Obj(vec![
        ("schema".into(), Json::str(CORPUS_SCHEMA)),
        ("seed".into(), Json::num(seed as f64)),
        ("count".into(), Json::num(count as f64)),
        ("budget".into(), budget_json(budget)),
        ("admitted".into(), Json::num(admitted.len() as f64)),
        ("rejected".into(), rejected),
        ("tasks".into(), Json::Arr(entries)),
    ]);
    std::fs::write(
        dir.join("manifest.json"),
        format!("{}\n", manifest.render()),
    )
}

/// Slice selection for [`load_corpus`] / the `sickle-corpus run` CLI.
#[derive(Debug, Clone, Default)]
pub struct CorpusFilters {
    /// Keep only these categories (`None` = all).
    pub categories: Option<BTreeSet<String>>,
    /// Keep only these task ids.
    pub task_ids: Option<BTreeSet<String>>,
    /// Keep only these table formats.
    pub formats: Option<BTreeSet<String>>,
    /// Keep only seeds in this inclusive range.
    pub seed_range: Option<(u64, u64)>,
}

impl CorpusFilters {
    /// Whether a manifest entry passes every active filter.
    pub fn matches(&self, id: &str, category: &str, format: &str, seed: u64) -> bool {
        if let Some(cats) = &self.categories {
            if !cats.contains(category) {
                return false;
            }
        }
        if let Some(ids) = &self.task_ids {
            if !ids.contains(id) {
                return false;
            }
        }
        if let Some(fmts) = &self.formats {
            if !fmts.contains(format) {
                return false;
            }
        }
        if let Some((lo, hi)) = self.seed_range {
            if seed < lo || seed > hi {
                return false;
            }
        }
        true
    }

    /// Parses an inclusive `LO..HI` seed range.
    pub fn parse_seed_range(s: &str) -> Option<(u64, u64)> {
        let (lo, hi) = s.split_once("..")?;
        let lo = lo.trim().parse().ok()?;
        let hi = hi.trim().parse().ok()?;
        (lo <= hi).then_some((lo, hi))
    }
}

fn load_err(path: &Path, msg: impl std::fmt::Display) -> String {
    format!("{}: {msg}", path.display())
}

fn decode_usize(j: &Json, key: &str, path: &Path) -> Result<usize, String> {
    j.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| load_err(path, format!("missing integer \"{key}\"")))
}

fn decode_str<'a>(j: &'a Json, key: &str, path: &Path) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| load_err(path, format!("missing string \"{key}\"")))
}

fn decode_wire_value(v: &Json, path: &Path) -> Result<Value, String> {
    match v {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Str(s) => Ok(Value::Str(s.as_str().into())),
        Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.2e18 => Ok(Value::Int(*n as i64)),
        Json::Num(n) => Ok(Value::Float(*n)),
        _ => Err(load_err(path, "constants must be scalars")),
    }
}

/// Loads the tasks of a frozen corpus that pass `filters`, in manifest
/// order, verifying each bundle's content hash.
///
/// # Errors
///
/// Missing/corrupt manifest or bundle files, schema mismatches, and
/// content-hash mismatches are all errors — a corpus that cannot be
/// loaded exactly is not run at all.
pub fn load_corpus(dir: &Path, filters: &CorpusFilters) -> Result<Vec<TaskBundle>, String> {
    let manifest_path = dir.join("manifest.json");
    let text = std::fs::read_to_string(&manifest_path).map_err(|e| load_err(&manifest_path, e))?;
    let manifest = Json::parse(&text).map_err(|e| load_err(&manifest_path, e))?;
    let schema = decode_str(&manifest, "schema", &manifest_path)?;
    if schema != CORPUS_SCHEMA {
        return Err(load_err(
            &manifest_path,
            format!("unsupported schema {schema:?} (want {CORPUS_SCHEMA:?})"),
        ));
    }
    let entries = manifest
        .get("tasks")
        .and_then(Json::as_array)
        .ok_or_else(|| load_err(&manifest_path, "missing \"tasks\" array"))?;

    let mut out = Vec::new();
    for entry in entries {
        let id = decode_str(entry, "id", &manifest_path)?;
        let category = decode_str(entry, "category", &manifest_path)?;
        let format_label = decode_str(entry, "format", &manifest_path)?;
        let seed = decode_usize(entry, "seed", &manifest_path)? as u64;
        if !filters.matches(id, category, format_label, seed) {
            continue;
        }
        let format = TableFormat::from_label(format_label)
            .ok_or_else(|| load_err(&manifest_path, format!("bad format {format_label:?}")))?;
        let rel = decode_str(entry, "path", &manifest_path)?;
        let task_dir = dir.join(rel);
        let task_path = task_dir.join("task.json");
        let task_text = std::fs::read_to_string(&task_path).map_err(|e| load_err(&task_path, e))?;
        let task = Json::parse(&task_text).map_err(|e| load_err(&task_path, e))?;
        if decode_str(&task, "schema", &task_path)? != TASK_SCHEMA {
            return Err(load_err(&task_path, "unsupported task schema"));
        }

        // Tables: parse through the same decoders the wire path uses.
        let mut tables = Vec::new();
        let mut table_bytes = Vec::new();
        let table_entries = task
            .get("tables")
            .and_then(Json::as_array)
            .ok_or_else(|| load_err(&task_path, "missing \"tables\""))?;
        for (i, te) in table_entries.iter().enumerate() {
            let file = decode_str(te, "file", &task_path)?;
            let fpath = task_dir.join(file);
            let bytes = std::fs::read_to_string(&fpath).map_err(|e| load_err(&fpath, e))?;
            let table = match format {
                TableFormat::Csv => {
                    crate::csv::parse_table(&bytes).map_err(|e| load_err(&fpath, e))?
                }
                TableFormat::Json => {
                    let json = Json::parse(&bytes).map_err(|e| load_err(&fpath, e))?;
                    crate::wire::decode_table(&json, i).map_err(|e| load_err(&fpath, e))?
                }
            };
            tables.push(table);
            table_bytes.push(bytes);
        }

        let demo_rows: Vec<Vec<String>> = task
            .get("demo")
            .and_then(Json::as_array)
            .ok_or_else(|| load_err(&task_path, "missing \"demo\""))?
            .iter()
            .map(|r| {
                r.as_array()
                    .map(|cells| {
                        cells
                            .iter()
                            .filter_map(Json::as_str)
                            .map(str::to_string)
                            .collect()
                    })
                    .ok_or_else(|| load_err(&task_path, "demo rows must be arrays"))
            })
            .collect::<Result<_, _>>()?;

        let mut join_keys = Vec::new();
        if let Some(jks) = task.get("join_keys").and_then(Json::as_array) {
            for jk in jks {
                let field = |name: &str| decode_usize(jk, name, &task_path);
                join_keys.push(JoinKey {
                    left_table: field("left_table")? - 1,
                    left_col: field("left_col")? - 1,
                    right_table: field("right_table")? - 1,
                    right_col: field("right_col")? - 1,
                });
            }
        }
        let mut constants = Vec::new();
        if let Some(cs) = task.get("constants").and_then(Json::as_array) {
            for c in cs {
                constants.push(decode_wire_value(c, &task_path)?);
            }
        }

        let budget_json = task
            .get("budget")
            .ok_or_else(|| load_err(&task_path, "missing \"budget\""))?;
        let budget = CorpusBudget {
            max_visited: decode_usize(budget_json, "max_visited", &task_path)?,
            max_solutions: decode_usize(budget_json, "max_solutions", &task_path)?,
        };
        let expected_json = task
            .get("expected")
            .ok_or_else(|| load_err(&task_path, "missing \"expected\""))?;
        let expected: Vec<String> = expected_json
            .get("solutions")
            .and_then(Json::as_array)
            .ok_or_else(|| load_err(&task_path, "missing expected.solutions"))?
            .iter()
            .filter_map(Json::as_str)
            .map(str::to_string)
            .collect();

        let bundle = TaskBundle {
            id: id.to_string(),
            seed,
            category: category.to_string(),
            format,
            tables,
            demo_rows,
            join_keys,
            constants,
            max_depth: decode_usize(&task, "max_depth", &task_path)?,
            enable_join: task
                .get("enable_join")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            budget,
            expected,
            visited: decode_usize(expected_json, "visited", &task_path)?,
            pruned: decode_usize(expected_json, "pruned", &task_path)?,
        };

        // Integrity: recompute the content hash from the parsed bundle
        // and the raw file bytes; any drift means the corpus was edited
        // or corrupted and must not be trusted as an oracle.
        let mut h = fnv1a64(FNV_OFFSET, task_text.as_bytes());
        for bytes in &table_bytes {
            h = fnv1a64(h, bytes.as_bytes());
        }
        let want = decode_str(entry, "hash", &manifest_path)?;
        let got = format!("{h:016x}");
        if got != want {
            return Err(load_err(
                &task_path,
                format!("content hash mismatch: manifest {want}, files {got}"),
            ));
        }
        out.push(bundle);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Run
// ---------------------------------------------------------------------------

/// One task's outcome in a corpus run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Task id.
    pub id: String,
    /// Category label.
    pub category: String,
    /// Generation seed.
    pub seed: u64,
    /// Table format label.
    pub format: &'static str,
    /// `"ok"` (matches expectations), `"mismatch"`, or `"error"`.
    pub status: &'static str,
    /// The solutions the run produced (rank order, rendered).
    pub solutions: Vec<String>,
    /// Visited counter from the response stats.
    pub visited: usize,
    /// Pruned counter from the response stats.
    pub pruned: usize,
    /// Wall-clock seconds (reporting only; never part of the dump).
    pub wall_s: f64,
}

/// Folds a wire response into a [`RunOutcome`] (shared by the in-process
/// runner and `sickle-shard --corpus`).
pub fn outcome_from_response(bundle: &TaskBundle, response: &Json, wall_s: f64) -> RunOutcome {
    let solutions: Vec<String> = response
        .get("solutions")
        .and_then(Json::as_array)
        .map(|qs| {
            qs.iter()
                .filter_map(Json::as_str)
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let stat = |k: &str| {
        response
            .get("stats")
            .and_then(|s| s.get(k))
            .and_then(Json::as_usize)
            .unwrap_or(0)
    };
    let status = if response.get("status").and_then(Json::as_str) != Some("ok") {
        "error"
    } else if solutions == bundle.expected {
        "ok"
    } else {
        "mismatch"
    };
    RunOutcome {
        id: bundle.id.clone(),
        category: bundle.category.clone(),
        seed: bundle.seed,
        format: bundle.format.label(),
        status,
        solutions,
        visited: stat("visited"),
        pruned: stat("pruned"),
        wall_s,
    }
}

/// Runs every bundle through the wire path on one warm in-process
/// session, in order.
pub fn run_corpus(tasks: &[TaskBundle]) -> Vec<RunOutcome> {
    let session = Session::new();
    tasks
        .iter()
        .map(|bundle| {
            let started = Instant::now();
            let response = match wire_line(bundle, &Json::str(&bundle.id)) {
                Ok(line) => crate::wire::handle_line(&session, &line),
                Err(e) => crate::wire::response_error(&Json::str(&bundle.id), "internal", &e),
            };
            outcome_from_response(bundle, &response, started.elapsed().as_secs_f64())
        })
        .collect()
}

/// FNV-1a 64 digest over the run's (id, status, solutions) sequence — the
/// deterministic fingerprint CI `cmp`s across runs and shard layouts.
pub fn corpus_digest(outcomes: &[RunOutcome]) -> u64 {
    let mut h = FNV_OFFSET;
    for o in outcomes {
        h = fnv1a64(h, o.id.as_bytes());
        h = fnv1a64(h, o.status.as_bytes());
        for s in &o.solutions {
            h = fnv1a64(h, s.as_bytes());
            h = fnv1a64(h, b"\n");
        }
        h = fnv1a64(h, b"\0");
    }
    h
}

/// The deterministic corpus dump: header, one block per task (in run
/// order) with its ranked solutions, and the digest as the last line.
/// Contains no timings, so two runs over the same corpus are
/// byte-identical.
pub fn render_dump(outcomes: &[RunOutcome]) -> String {
    let mut out = format!("corpus dump: tasks={} (deterministic)\n", outcomes.len());
    for o in outcomes {
        out.push_str(&format!(
            "## {} [{}] seed={} fmt={} status={} visited={} pruned={} solutions={}\n",
            o.id,
            o.category,
            o.seed,
            o.format,
            o.status,
            o.visited,
            o.pruned,
            o.solutions.len()
        ));
        for (i, q) in o.solutions.iter().enumerate() {
            out.push_str(&format!("  {:2}. {q}\n", i + 1));
        }
    }
    out.push_str(&format!(
        "corpus digest: {:016x}\n",
        corpus_digest(outcomes)
    ));
    out
}

/// Renders `BENCH_corpus.json` ([`RESULTS_SCHEMA`]).
pub fn results_json(dir: &str, outcomes: &[RunOutcome]) -> String {
    let count = |status: &str| outcomes.iter().filter(|o| o.status == status).count();
    let records = Json::Arr(
        outcomes
            .iter()
            .map(|o| {
                Json::Obj(vec![
                    ("id".into(), Json::str(&o.id)),
                    ("category".into(), Json::str(&o.category)),
                    ("seed".into(), Json::num(o.seed as f64)),
                    ("format".into(), Json::str(o.format)),
                    ("status".into(), Json::str(o.status)),
                    ("solutions".into(), Json::num(o.solutions.len() as f64)),
                    ("visited".into(), Json::num(o.visited as f64)),
                    ("pruned".into(), Json::num(o.pruned as f64)),
                    ("wall_s".into(), Json::num(o.wall_s)),
                ])
            })
            .collect(),
    );
    let json = Json::Obj(vec![
        ("schema".into(), Json::str(RESULTS_SCHEMA)),
        ("dir".into(), Json::str(dir)),
        ("tasks".into(), Json::num(outcomes.len() as f64)),
        ("ok".into(), Json::num(count("ok") as f64)),
        ("mismatch".into(), Json::num(count("mismatch") as f64)),
        ("error".into(), Json::num(count("error") as f64)),
        (
            "digest".into(),
            Json::str(format!("{:016x}", corpus_digest(outcomes))),
        ),
        ("records".into(), records),
    ]);
    format!("{}\n", json.render())
}

/// The default corpus directory.
pub fn default_corpus_dir() -> PathBuf {
    PathBuf::from("corpus/v1")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(names: &[&str], rows: Vec<Vec<Value>>) -> Table {
        Table::new(names.iter().map(|s| s.to_string()), rows).unwrap()
    }

    #[test]
    fn extensional_agreement_separates_broadcast_from_rekeying() {
        // group(T,[0],sum) …
        let top = t(
            &["region", "sum"],
            vec![
                vec!["west".into(), 33.into()],
                vec!["east".into(), 21.into()],
            ],
        );
        // … vs the partition broadcast of the same aggregate: agrees.
        let broadcast = t(
            &["region", "q", "rev", "sum"],
            vec![
                vec!["west".into(), 1.into(), 10.into(), 33.into()],
                vec!["west".into(), 2.into(), 23.into(), 33.into()],
                vec!["east".into(), 1.into(), 21.into(), 21.into()],
            ],
        );
        assert!(extensionally_agrees(&top, &broadcast));
        // … vs the same sums keyed on a different column: disagrees.
        let rekeyed = t(
            &["code", "sum"],
            vec![vec![1.into(), 33.into()], vec![2.into(), 21.into()]],
        );
        assert!(!extensionally_agrees(&top, &rekeyed));
        // Fewer columns than the top can never agree.
        let narrow = t(&["sum"], vec![vec![33.into()], vec![21.into()]]);
        assert!(!extensionally_agrees(&top, &narrow));
    }

    #[test]
    fn digest_tracks_solutions_and_status() {
        let mk = |status: &'static str, sols: &[&str]| RunOutcome {
            id: "group-1".into(),
            category: "group".into(),
            seed: 1,
            format: "csv",
            status,
            solutions: sols.iter().map(|s| s.to_string()).collect(),
            visited: 0,
            pruned: 0,
            wall_s: 0.0,
        };
        let a = corpus_digest(&[mk("ok", &["group(T1, [0], sum(c2))"])]);
        let b = corpus_digest(&[mk("ok", &["group(T1, [0], max(c2))"])]);
        let c = corpus_digest(&[mk("mismatch", &["group(T1, [0], sum(c2))"])]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And it is stable.
        assert_eq!(a, corpus_digest(&[mk("ok", &["group(T1, [0], sum(c2))"])]));
    }

    #[test]
    fn seed_range_parses_inclusive() {
        assert_eq!(CorpusFilters::parse_seed_range("3..9"), Some((3, 9)));
        assert_eq!(CorpusFilters::parse_seed_range(" 3 .. 3 "), Some((3, 3)));
        assert_eq!(CorpusFilters::parse_seed_range("9..3"), None);
        assert_eq!(CorpusFilters::parse_seed_range("x..3"), None);
        assert_eq!(CorpusFilters::parse_seed_range("37"), None);
    }
}
