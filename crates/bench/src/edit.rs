//! The warm-edit bench scenario behind `sickle-edit`.
//!
//! Measures incremental re-synthesis: for each selected suite task, a
//! script of demonstration edits (row removal, a single-cell change, a
//! full re-demonstration) is solved twice —
//!
//! * **cold** — a fresh [`Session`] solves the edited task from nothing;
//! * **warm** — one session solves the *base* task with retention
//!   enabled, then re-solves the edited task as a warm edit
//!   ([`SynthRequest::with_prior`] naming the base demo's fingerprint),
//!   so unchanged columns keep their analysis memos and surviving prior
//!   solutions are re-verified instead of rediscovered.
//!
//! The two solution lists must be byte-identical for every edit (the
//! analysis cache is a pure memoization layer; [`EditRecord::matched`]
//! records the comparison and the binary exits nonzero on a mismatch).
//! The latency comparison is the point: `BENCH_edit.json` carries
//! per-edit cold/warm wall times plus suite geo-means.

use std::time::Instant;

use sickle_benchmarks::{all_benchmarks, Benchmark};
use sickle_core::{demo_fingerprint, Budget, Session, SickleError, SynthRequest, SynthTask};
use sickle_provenance::{Demo, DemoExpr};

/// One scripted edit of one suite task, solved cold and warm.
#[derive(Debug, Clone)]
pub struct EditRecord {
    /// Benchmark id.
    pub id: usize,
    /// Benchmark name.
    pub name: String,
    /// Edit script step (`drop-last-row`, `edit-cell`, `reseed`).
    pub edit: &'static str,
    /// Wall seconds of the cold solve (fresh session, edited task).
    pub cold_s: f64,
    /// Wall seconds of the warm-edit re-solve only (the base solve that
    /// warmed the session is not counted).
    pub warm_s: f64,
    /// Verdicts the warm re-solve served from the session cache.
    pub reused_verdicts: usize,
    /// Memo entries the warm edit invalidated via its demo delta.
    pub invalidated_verdicts: usize,
    /// Solutions found (identical cold and warm when `matched`).
    pub solutions: usize,
    /// Whether warm and cold solution lists were byte-identical.
    pub matched: bool,
}

/// All records of one scenario run plus the rendered solution lists
/// (cold and warm, per edit) so callers can dump them for external
/// comparison.
#[derive(Debug, Clone, Default)]
pub struct EditResults {
    /// One record per (task × edit).
    pub records: Vec<EditRecord>,
    /// `(label, cold dump, warm dump)` per record, same order. The label
    /// is `"{id}-{edit}"`, unique within a run.
    pub dumps: Vec<(String, String, String)>,
}

impl EditResults {
    /// True when every edit's warm solution list matched its cold one.
    pub fn all_matched(&self) -> bool {
        self.records.iter().all(|r| r.matched)
    }

    /// Geometric means `(cold_s, warm_s)` over all records (0.0 when
    /// empty). Wall times are floored at 1µs so an instant solve cannot
    /// zero the product.
    pub fn geo_means(&self) -> (f64, f64) {
        if self.records.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.records.len() as f64;
        let geo = |f: &dyn Fn(&EditRecord) -> f64| {
            (self
                .records
                .iter()
                .map(|r| f(r).max(1e-6).ln())
                .sum::<f64>()
                / n)
                .exp()
        };
        (geo(&|r| r.cold_s), geo(&|r| r.warm_s))
    }
}

/// The edits scripted for one task: deterministic functions of the base
/// demonstration (and the generator's `seed + 1` re-demonstration), so
/// every run of the scenario replays the same script.
///
/// Not every edit needs to stay solvable — `edit-cell` splices a cell
/// from a *different* demonstration, modelling a user mid-correction —
/// because the invariant under test is warm/cold agreement, not success.
fn scripted_edits(b: &Benchmark, base: &SynthTask, seed: u64) -> Vec<(&'static str, SynthTask)> {
    let mut edits: Vec<(&'static str, SynthTask)> = Vec::new();
    let demo = &base.demo;
    let cells = |d: &Demo| -> Vec<Vec<DemoExpr>> {
        (0..d.n_rows())
            .map(|r| (0..d.n_cols()).map(|c| d.cell(r, c).clone()).collect())
            .collect()
    };
    if demo.n_rows() >= 2 {
        let mut rows = cells(demo);
        rows.pop();
        if let Ok(d) = Demo::new(rows) {
            let mut t = base.clone();
            t.demo = d;
            edits.push(("drop-last-row", t));
        }
    }
    if let Ok((reseeded, _)) = b.task(seed + 1) {
        let other = &reseeded.demo;
        if other.n_rows() == demo.n_rows() && other.n_cols() == demo.n_cols() {
            let (r, c) = (demo.n_rows() - 1, demo.n_cols() - 1);
            if other.cell(r, c) != demo.cell(r, c) {
                let mut rows = cells(demo);
                rows[r][c] = other.cell(r, c).clone();
                if let Ok(d) = Demo::new(rows) {
                    let mut t = base.clone();
                    t.demo = d;
                    edits.push(("edit-cell", t));
                }
            }
        }
        if reseeded.demo != base.demo {
            edits.push(("reseed", reseeded));
        }
    }
    edits
}

fn render_solutions(result: &sickle_core::SynthResult) -> String {
    let mut out = String::new();
    for (i, q) in result.solutions.iter().enumerate() {
        out.push_str(&format!("{:2}. {q}\n", i + 1));
    }
    out
}

fn request_for(task: SynthTask, b: &Benchmark, budget: usize) -> SynthRequest {
    SynthRequest::from_task(task)
        .with_search(b.config())
        .with_budget(
            Budget::unbounded()
                .with_max_visited(Some(budget))
                .with_max_solutions(10),
        )
}

/// Runs the scenario over the given benchmark ids (every id with a
/// generable task; unknown ids are skipped) under a visited-query
/// budget.
///
/// # Errors
///
/// Propagates the first solve failure — the scripted tasks are all
/// well-formed, so an error here is an engine bug, not bad input.
pub fn run_edit_scenario(
    ids: &[usize],
    budget: usize,
    seed: u64,
) -> Result<EditResults, SickleError> {
    let mut results = EditResults::default();
    for b in all_benchmarks() {
        if !ids.contains(&b.id) {
            continue;
        }
        let Ok((base, _)) = b.task(seed) else {
            continue;
        };
        for (edit, edited) in scripted_edits(&b, &base, seed) {
            // Cold: a fresh session sees only the edited task.
            let cold_session = Session::new();
            let t0 = Instant::now();
            let cold = cold_session.solve(&request_for(edited.clone(), &b, budget))?;
            let cold_s = t0.elapsed().as_secs_f64();

            // Warm: solve the base with retention, then re-solve the
            // edit against the retained prior. Only the re-solve is
            // timed — the base solve models work the user already paid
            // for before editing.
            let warm_session = Session::new();
            warm_session.solve(&request_for(base.clone(), &b, budget).with_retain(true))?;
            let prior_fp = demo_fingerprint(&base);
            let t0 = Instant::now();
            let warm = warm_session
                .solve(&request_for(edited.clone(), &b, budget).with_prior(prior_fp))?;
            let warm_s = t0.elapsed().as_secs_f64();

            let cold_dump = render_solutions(&cold);
            let warm_dump = render_solutions(&warm);
            results.records.push(EditRecord {
                id: b.id,
                name: b.name.to_string(),
                edit,
                cold_s,
                warm_s,
                reused_verdicts: warm.stats.reused_verdicts,
                invalidated_verdicts: warm.stats.invalidated_verdicts,
                solutions: warm.solutions.len(),
                matched: cold_dump == warm_dump,
            });
            results
                .dumps
                .push((format!("{}-{edit}", b.id), cold_dump, warm_dump));
        }
    }
    Ok(results)
}

/// Renders `BENCH_edit.json` (schema `sickle-bench/edit/v1`): run
/// parameters, suite geo-means, one record per (task × edit).
pub fn edit_results_json(res: &EditResults, budget: usize, seed: u64) -> String {
    let (geo_cold, geo_warm) = res.geo_means();
    let mut out = String::from("{\n  \"schema\": \"sickle-bench/edit/v1\",\n");
    out.push_str(&format!(
        "  \"max_visited\": {budget},\n  \"seed\": {seed},\n  \
         \"geo_mean_cold_s\": {geo_cold:.6},\n  \"geo_mean_warm_s\": {geo_warm:.6},\n  \
         \"geo_mean_speedup\": {:.6},\n",
        if geo_warm > 0.0 {
            geo_cold / geo_warm
        } else {
            0.0
        }
    ));
    out.push_str("  \"records\": [\n");
    for (i, r) in res.records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": {}, \"name\": \"{}\", \"edit\": \"{}\", \"cold_s\": {:.6}, \
             \"warm_s\": {:.6}, \"reused_verdicts\": {}, \"invalidated_verdicts\": {}, \
             \"solutions\": {}, \"matched\": {}}}{}\n",
            r.id,
            crate::json::escape(&r.name),
            r.edit,
            r.cold_s,
            r.warm_s,
            r.reused_verdicts,
            r.invalidated_verdicts,
            r.solutions,
            r.matched,
            if i + 1 == res.records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_edits_match_cold_solves_on_a_small_task() {
        let res = run_edit_scenario(&[1], 5_000, 2022).expect("scenario runs");
        assert!(!res.records.is_empty(), "task 1 scripted no edits");
        assert!(
            res.all_matched(),
            "warm/cold divergence: {:?}",
            res.records
                .iter()
                .filter(|r| !r.matched)
                .collect::<Vec<_>>()
        );
        for r in &res.records {
            assert!(r.reused_verdicts > 0, "no verdict reuse on {:?}", r);
        }
        let json = edit_results_json(&res, 5_000, 2022);
        assert!(json.contains("\"schema\": \"sickle-bench/edit/v1\""));
        assert!(json.contains("\"matched\": true"));
        assert!(json.contains("\"geo_mean_speedup\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn edit_script_is_deterministic() {
        let b = all_benchmarks().into_iter().find(|b| b.id == 1).unwrap();
        let (base, _) = b.task(2022).unwrap();
        let a = scripted_edits(&b, &base, 2022);
        let again = scripted_edits(&b, &base, 2022);
        assert_eq!(a.len(), again.len());
        for ((n1, t1), (n2, t2)) in a.iter().zip(&again) {
            assert_eq!(n1, n2);
            assert_eq!(t1.demo, t2.demo);
            assert_ne!(t1.demo, base.demo, "an edit must change the demo");
        }
    }
}
