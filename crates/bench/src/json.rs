//! Minimal JSON support for the wire format and the `BENCH_*.json`
//! artifacts.
//!
//! The offline build has no `serde`; this is a small, strict JSON value
//! type with a recursive-descent parser and a deterministic compact
//! renderer. Objects preserve insertion order (the renderer never
//! reorders keys), numbers are `f64` (integers render without a decimal
//! point), and parsing is depth-limited so a hostile request line cannot
//! overflow the server's stack.

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`].
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers render without a fractional part).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`]: byte position plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the source.
    pub pos: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for [`Json::Str`].
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for [`Json::Num`].
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if this is a whole number
    /// in `usize` range.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        (n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n)).then_some(n as usize)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte position of the first problem.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Renders compactly (no whitespace), deterministically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_num(*n, out),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; null is the least-wrong encoding.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

/// Escapes a string body for embedding between JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("invalid scalar"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            // hex4 advanced past the digits; compensate for
                            // the byte consumed below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run up to the next quote or escape
                    // and validate it as UTF-8 once (validating per
                    // character would make string parsing quadratic).
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                        self.pos += 1;
                    }
                    let segment = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(segment);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_round_trip() {
        let src = r#"{"id": 7, "name": "a \"b\"\nc", "ok": true, "xs": [1, 2.5, null], "nested": {"k": -3}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("id").unwrap().as_usize(), Some(7));
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"b\"\nc"));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("nested").unwrap().get("k").unwrap().as_f64(),
            Some(-3.0)
        );
        // Round trip through the compact renderer.
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        assert!(rendered.contains("\\\"b\\\""));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1e",
            "{\"a\":1}x",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb is rejected, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        let escaped = Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(escaped.as_str(), Some("é😀"));
        assert!(Json::parse(r#""\ud800""#).is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
