//! A strict, value-preserving CSV codec for corpus bundles and the wire
//! format's `"format": "csv"` table ingestion.
//!
//! The codec is RFC-4180-shaped (quoted fields with `""` escapes, LF or
//! CRLF record separators, a mandatory header row) with one addition: the
//! **storage representation** of every [`Value`] survives a round trip,
//! which plain CSV cannot promise:
//!
//! * `Null` renders as an *unquoted* empty field; a *quoted* empty field
//!   (`""`) is the empty string;
//! * `Int(2)` renders as `2`, `Float(2.0)` as `2.0` — distinct on disk
//!   even though they compare equal in the engine's value order;
//! * `-0.0` keeps its sign (`-0.0`), `0.0` stays `0.0`;
//! * strings that *look* like numbers, booleans or empties are quoted, so
//!   `Str("2")` comes back as a string, not an integer;
//! * booleans render bare as `true` / `false`.
//!
//! Parsing is strict: ragged rows, unbalanced quotes, trailing garbage
//! after a closing quote and non-finite floats are structured
//! [`CsvError`]s (surfaced as `invalid_request` on the wire), never
//! silent coercions.

use sickle_table::{Table, Value};

/// A structured CSV codec failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based record number (0 for header/structural problems).
    pub row: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.row == 0 {
            write!(f, "csv: {}", self.msg)
        } else {
            write!(f, "csv row {}: {}", self.row, self.msg)
        }
    }
}

impl std::error::Error for CsvError {}

fn err(row: usize, msg: impl Into<String>) -> CsvError {
    CsvError {
        row,
        msg: msg.into(),
    }
}

/// True when a bare (unquoted) field would parse back as something other
/// than the string itself.
fn needs_quoting(s: &str) -> bool {
    s.is_empty()
        || s == "true"
        || s == "false"
        || s.parse::<i64>().is_ok()
        || s.parse::<f64>().is_ok()
        || s.contains([',', '"', '\n', '\r'])
        || s.starts_with(' ')
        || s.ends_with(' ')
}

fn render_field(out: &mut String, s: &str, quote: bool) {
    if quote {
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

fn render_value(out: &mut String, v: &Value, row: usize) -> Result<(), CsvError> {
    match v {
        Value::Null => {} // unquoted empty field
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(err(
                    row,
                    format!("non-finite float {x} is not representable"),
                ));
            }
            // Always keep a decimal point so the field re-parses as a
            // float (preserving the Int/Float storage distinction and
            // the sign of -0.0, whose Display form is "-0").
            let s = x.to_string();
            let whole = s.parse::<i64>().is_ok();
            out.push_str(&s);
            if whole {
                out.push_str(".0");
            }
        }
        Value::Str(s) => render_field(out, s, needs_quoting(s)),
    }
    Ok(())
}

/// Renders a table as CSV text (header row + one record per row, LF
/// separators, trailing newline).
///
/// # Errors
///
/// Returns [`CsvError`] if a cell holds a non-finite float.
pub fn render_table(t: &Table) -> Result<String, CsvError> {
    let mut out = String::new();
    for (i, name) in t.names().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_field(&mut out, name, needs_quoting(name));
    }
    out.push('\n');
    for r in 0..t.n_rows() {
        let row = t.row(r);
        for (c, v) in row.iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            render_value(&mut out, v, r + 1)?;
        }
        out.push('\n');
    }
    Ok(out)
}

/// One parsed field: its text and whether it was quoted.
struct Field {
    text: String,
    quoted: bool,
}

/// Splits one logical CSV text into records of fields, honoring quotes
/// (including embedded newlines inside quoted fields).
fn parse_records(src: &str) -> Result<Vec<Vec<Field>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<Field> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let bytes = src.as_bytes();
    let mut i = 0;
    let row_no = |records: &Vec<Vec<Field>>| records.len() + 1;

    macro_rules! end_field {
        () => {{
            record.push(Field {
                text: std::mem::take(&mut field),
                quoted,
            });
            quoted = false;
        }};
    }

    while i < bytes.len() {
        let b = bytes[i];
        if in_quotes {
            match b {
                b'"' if bytes.get(i + 1) == Some(&b'"') => {
                    field.push('"');
                    i += 2;
                }
                b'"' => {
                    in_quotes = false;
                    i += 1;
                    // Only a separator or end-of-record may follow.
                    match bytes.get(i) {
                        None | Some(b',') | Some(b'\n') | Some(b'\r') => {}
                        _ => {
                            return Err(err(
                                row_no(&records),
                                "unexpected character after closing quote",
                            ))
                        }
                    }
                }
                _ => {
                    // Multi-byte chars are copied byte-wise via the str slice.
                    let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                    field.push_str(&src[i..i + ch_len]);
                    i += ch_len;
                }
            }
            continue;
        }
        match b {
            b'"' if field.is_empty() && !quoted => {
                in_quotes = true;
                quoted = true;
                i += 1;
            }
            b'"' => return Err(err(row_no(&records), "quote inside unquoted field")),
            b',' => {
                end_field!();
                i += 1;
            }
            b'\r' if bytes.get(i + 1) == Some(&b'\n') => {
                end_field!();
                records.push(std::mem::take(&mut record));
                i += 2;
            }
            b'\n' => {
                end_field!();
                records.push(std::mem::take(&mut record));
                i += 1;
            }
            _ => {
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                field.push_str(&src[i..i + ch_len]);
                i += ch_len;
            }
        }
    }
    if in_quotes {
        return Err(err(row_no(&records), "unterminated quoted field"));
    }
    // A final record without a trailing newline still counts.
    if !field.is_empty() || !record.is_empty() || quoted {
        record.push(Field {
            text: field,
            quoted,
        });
        records.push(record);
    }
    Ok(records)
}

fn parse_value(f: &Field) -> Value {
    if f.quoted {
        return Value::Str(f.text.as_str().into());
    }
    let s = f.text.as_str();
    if s.is_empty() {
        return Value::Null;
    }
    if s == "true" {
        return Value::Bool(true);
    }
    if s == "false" {
        return Value::Bool(false);
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(x) = s.parse::<f64>() {
        if x.is_finite() {
            return Value::Float(x);
        }
    }
    Value::Str(s.into())
}

/// Parses CSV text into a [`Table`]: the first record is the header, every
/// later record one row.
///
/// # Errors
///
/// Returns [`CsvError`] for an empty input, an empty or blank header
/// name, a ragged row (wrong field count, with the 1-based record
/// number), or malformed quoting.
pub fn parse_table(src: &str) -> Result<Table, CsvError> {
    let records = parse_records(src)?;
    let mut it = records.into_iter();
    let header = it.next().ok_or_else(|| err(0, "missing header row"))?;
    if header.is_empty() {
        return Err(err(0, "missing header row"));
    }
    let names: Vec<String> = header
        .iter()
        .map(|f| {
            if f.text.trim().is_empty() {
                Err(err(0, "empty column name in header"))
            } else {
                Ok(f.text.clone())
            }
        })
        .collect::<Result<_, _>>()?;
    let mut rows = Vec::new();
    for (i, record) in it.enumerate() {
        if record.len() != names.len() {
            return Err(err(
                i + 1,
                format!(
                    "ragged row: {} field(s), header has {}",
                    record.len(),
                    names.len()
                ),
            ));
        }
        rows.push(record.iter().map(parse_value).collect::<Vec<Value>>());
    }
    Table::new(names, rows).map_err(|e| err(0, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact storage equality: variant AND bit pattern (the engine's
    /// `PartialEq` treats `Int(2) == Float(2.0)` and `0.0 == -0.0`, which
    /// is precisely what this must NOT do).
    fn same_repr(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Int(x), Value::Int(y)) => x == y,
            (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
            (Value::Str(x), Value::Str(y)) => x == y,
            _ => false,
        }
    }

    #[test]
    fn round_trip_preserves_storage_representation() {
        let t = Table::new(
            ["name", "x", "note"],
            vec![
                vec![Value::Str("alice".into()), Value::Int(2), Value::Null],
                vec![
                    Value::Str("2".into()),
                    Value::Float(2.0),
                    Value::Str("".into()),
                ],
                vec![
                    Value::Str("true".into()),
                    Value::Float(0.0),
                    Value::Bool(true),
                ],
                vec![
                    Value::Str("a,b\nc\"d".into()),
                    Value::Float(-0.0),
                    Value::Bool(false),
                ],
                vec![
                    Value::Str(" pad ".into()),
                    Value::Float(0.5),
                    Value::Int(-7),
                ],
            ],
        )
        .unwrap();
        let text = render_table(&t).unwrap();
        let back = parse_table(&text).unwrap();
        assert_eq!(back.names(), t.names());
        assert_eq!(back.n_rows(), t.n_rows());
        for r in 0..t.n_rows() {
            for c in 0..t.n_cols() {
                assert!(
                    same_repr(&t.row(r)[c], &back.row(r)[c]),
                    "({r},{c}): {:?} vs {:?}\n{text}",
                    t.row(r)[c],
                    back.row(r)[c],
                );
            }
        }
        // And the re-render is byte-identical (canonical form).
        assert_eq!(render_table(&back).unwrap(), text);
    }

    #[test]
    fn structural_errors_are_reported_with_rows() {
        let ragged = parse_table("a,b\n1,2\n3\n").unwrap_err();
        assert_eq!(ragged.row, 2);
        assert!(ragged.msg.contains("ragged"), "{ragged}");
        assert!(parse_table("").unwrap_err().msg.contains("header"));
        assert!(parse_table("a,,b\n")
            .unwrap_err()
            .msg
            .contains("column name"));
        assert!(parse_table("a\n\"open")
            .unwrap_err()
            .msg
            .contains("unterminated"));
        assert!(parse_table("a\n\"x\"y\n")
            .unwrap_err()
            .msg
            .contains("closing quote"));
        assert!(parse_table("a\nx\"y\n").unwrap_err().msg.contains("quote"));
    }

    #[test]
    fn crlf_and_missing_trailing_newline_parse() {
        let t = parse_table("a,b\r\n1,west\r\n2,east").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.row(1)[1], Value::Str("east".into()));
    }

    #[test]
    fn non_finite_floats_do_not_render() {
        let t = Table::new(["x"], vec![vec![Value::Float(f64::INFINITY)]]).unwrap();
        assert!(render_table(&t).is_err());
    }
}
