//! Shared benchmark runner: executes every (benchmark × technique) pair and
//! renders the paper's tables and figures from the collected records.

use std::time::Duration;

use sickle_baselines::{TypeAnalyzer, ValueAnalyzer};
use sickle_benchmarks::{all_benchmarks, Benchmark, Category};
use sickle_core::{
    Analyzer, AnalyzerChoice, Budget, CachePolicy, Session, SickleError, SynthRequest,
};

/// The compared techniques (paper names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Technique {
    /// Sickle's abstract data provenance.
    Provenance,
    /// Morpheus-style type abstraction.
    TypeAbs,
    /// Scythe-style value abstraction.
    ValueAbs,
}

impl Technique {
    /// All techniques, in report order.
    pub const ALL: [Technique; 3] = [
        Technique::Provenance,
        Technique::TypeAbs,
        Technique::ValueAbs,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Technique::Provenance => "sickle",
            Technique::TypeAbs => "type-abs",
            Technique::ValueAbs => "value-abs",
        }
    }

    /// The session-API analyzer selection implementing this technique.
    pub fn choice(self) -> AnalyzerChoice {
        match self {
            Technique::Provenance => AnalyzerChoice::Provenance,
            Technique::TypeAbs => AnalyzerChoice::custom("type-abs", || Box::new(TypeAnalyzer)),
            Technique::ValueAbs => AnalyzerChoice::custom("value-abs", || Box::new(ValueAnalyzer)),
        }
    }
}

/// Returns the analyzer implementing a technique.
pub fn technique_analyzers(t: Technique) -> Box<dyn Analyzer> {
    t.choice().make()
}

/// Outcome of one (benchmark × technique) run.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Benchmark id (1-based).
    pub id: usize,
    /// Benchmark name.
    pub name: String,
    /// Benchmark category.
    pub category: Category,
    /// Technique used.
    pub technique: Technique,
    /// Whether the correct query was recovered within budget.
    pub solved: bool,
    /// Wall-clock time until the correct query (or until budget).
    pub elapsed: Duration,
    /// Time spent in the analyzer (abstract evaluation + Def. 3 checks).
    pub time_analyze: Duration,
    /// Time spent evaluating concrete candidates and checking Def. 1 —
    /// the sum of the three acceptance-stage components below.
    pub time_eval: Duration,
    /// Acceptance stage 1: concrete candidate materialization (values,
    /// demo-dims fast reject, star channel).
    pub time_materialize: Duration,
    /// Acceptance stage 2: reference-containment prefilter over lazily
    /// converted cell sets.
    pub time_prefilter: Duration,
    /// Acceptance stage 3: candidate-seeded Def. 1 expression matching.
    pub time_match: Duration,
    /// Time spent expanding holes (domain inference + tree building).
    pub time_expand: Duration,
    /// Time spent inside the engine's filtered-join kernels (hash build +
    /// probe, or the non-equi cross-loop fallback).
    pub time_join: Duration,
    /// Output rows produced by those join kernels.
    pub join_rows: usize,
    /// Queries (partial + concrete) visited.
    pub visited: usize,
    /// Partial queries pruned.
    pub pruned: usize,
    /// Engine-cache entries dropped by eviction sweeps.
    pub cache_evictions: usize,
    /// Engine-cache entries demoted (star-channel spill).
    pub cache_demotions: usize,
    /// Engine-cache re-evaluations of previously evicted queries.
    pub cache_reevals: usize,
    /// Time spent on those re-evaluations.
    pub cache_reeval_time: Duration,
    /// Approximate peak bytes attributed to the run: pooled interned sets
    /// and analysis memos plus live engine-cache footprint at finish.
    pub mem_bytes: usize,
    /// Def. 3 verdicts served from the session-wide analysis cache
    /// instead of recomputed (hits over the whole run; higher on warm
    /// sessions and warm edits).
    pub reused_verdicts: usize,
    /// Memo entries invalidated on behalf of this run by a warm edit
    /// superseding its prior demo; zero on cold solves.
    pub invalidated_verdicts: usize,
    /// 1-based rank of the correct query among returned solutions, when
    /// solved (consistent-but-incorrect queries found earlier push it down).
    pub rank: Option<usize>,
}

/// Harness configuration, read from the environment.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Per-run wall-clock budget.
    pub timeout: Duration,
    /// Per-run visited-query budget.
    pub max_visited: usize,
    /// Demonstration-generation seed.
    pub seed: u64,
    /// Restrict to these benchmark ids (empty = all).
    pub only: Vec<usize>,
    /// Worker threads for skeleton expansion (1 = sequential search).
    pub workers: usize,
    /// Engine-cache eviction policy for every run (A/B runs switch it
    /// with `SICKLE_CACHE_POLICY=legacy`).
    pub cache: CachePolicy,
}

impl HarnessConfig {
    /// Reads `SICKLE_TIMEOUT_SECS`, `SICKLE_MAX_VISITED`, `SICKLE_SEED`,
    /// `SICKLE_ONLY`, `SICKLE_WORKERS`, `SICKLE_CACHE_POLICY`
    /// (`cost-aware` (default) | `legacy`), `SICKLE_CACHE_CAP` with the
    /// documented defaults.
    pub fn from_env() -> HarnessConfig {
        let get = |k: &str| std::env::var(k).ok();
        let mut cache = match get("SICKLE_CACHE_POLICY").as_deref() {
            Some("legacy") => CachePolicy::legacy(),
            _ => CachePolicy::default(),
        };
        if let Some(cap) = get("SICKLE_CACHE_CAP").and_then(|v| v.parse().ok()) {
            cache = cache.with_cap(cap);
        }
        HarnessConfig {
            timeout: Duration::from_secs(
                get("SICKLE_TIMEOUT_SECS")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(15),
            ),
            max_visited: get("SICKLE_MAX_VISITED")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1_000_000),
            seed: get("SICKLE_SEED")
                .and_then(|v| v.parse().ok())
                .unwrap_or(2022),
            only: get("SICKLE_ONLY")
                .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
                .unwrap_or_default(),
            workers: get("SICKLE_WORKERS")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1)
                .max(1),
            cache,
        }
    }

    /// One-line render of the knobs, for run banners.
    pub fn banner(&self) -> String {
        format!(
            "timeout={}s max_visited={} seed={} workers={} cache={}/cap={}{}",
            self.timeout.as_secs(),
            self.max_visited,
            self.seed,
            self.workers,
            if self.cache.cost_aware {
                "cost-aware"
            } else {
                "legacy"
            },
            self.cache.cap,
            if self.only.is_empty() {
                String::new()
            } else {
                format!(" only={:?}", self.only)
            }
        )
    }
}

/// Builds the session request for one (benchmark × technique) run under
/// the harness budget.
///
/// # Errors
///
/// Returns [`SickleError::Internal`] when the benchmark's demonstration
/// cannot be generated for the configured seed (a malformed or missing
/// benchmark definition must surface as a structured error, not a
/// panic).
pub fn benchmark_request(
    b: &Benchmark,
    technique: Technique,
    hc: &HarnessConfig,
) -> Result<SynthRequest, SickleError> {
    let (task, _gen) = b.task(hc.seed).map_err(|e| SickleError::Internal {
        message: format!("benchmark {} demo generation failed: {e}", b.id),
    })?;
    Ok(SynthRequest::from_task(task)
        .with_search(b.config())
        .with_budget(
            Budget::default()
                .with_timeout(Some(hc.timeout))
                .with_max_visited(Some(hc.max_visited))
                // Collect up to N=10 consistent queries for ranking, but
                // stop early on the correct one (the stop predicate).
                .with_max_solutions(10),
        )
        .with_analyzer(technique.choice())
        .with_workers(hc.workers)
        .with_cache_policy(hc.cache))
}

/// Runs one benchmark with one technique on a cold session; the search
/// stops as soon as the correct query is recovered (§5.2: "the
/// synthesizer runs until the correct query q_gt is found").
///
/// # Errors
///
/// Propagates [`benchmark_request`] failures and request validation /
/// internal search errors from the session.
pub fn run_one(
    b: &Benchmark,
    technique: Technique,
    hc: &HarnessConfig,
) -> Result<RunRecord, SickleError> {
    run_one_in(&Session::new(), b, technique, hc)
}

/// [`run_one`] against a caller-supplied (warm) [`Session`]: suite runs
/// reuse one session so interned reference sets and Def. 3 verdicts carry
/// across tasks.
///
/// # Errors
///
/// As [`run_one`].
pub fn run_one_in(
    session: &Session,
    b: &Benchmark,
    technique: Technique,
    hc: &HarnessConfig,
) -> Result<RunRecord, SickleError> {
    let request = benchmark_request(b, technique, hc)?;
    let result = session.solve_with(&request, |q| b.is_correct(q))?;
    let rank = result
        .solutions
        .iter()
        .position(|q| b.is_correct(q))
        .map(|i| i + 1);
    Ok(RunRecord {
        id: b.id,
        name: b.name.to_string(),
        category: b.category,
        technique,
        solved: rank.is_some(),
        elapsed: result.stats.elapsed,
        time_analyze: result.stats.time_analyze,
        time_eval: result.stats.time_concrete,
        time_materialize: result.stats.time_materialize,
        time_prefilter: result.stats.time_prefilter,
        time_match: result.stats.time_match,
        time_expand: result.stats.time_expand,
        time_join: result.stats.time_join,
        join_rows: result.stats.join_rows,
        visited: result.stats.visited,
        pruned: result.stats.pruned,
        cache_evictions: result.stats.cache_evictions,
        cache_demotions: result.stats.cache_demotions,
        cache_reevals: result.stats.cache_reevals,
        cache_reeval_time: result.stats.cache_reeval_time,
        mem_bytes: result.stats.mem_bytes,
        reused_verdicts: result.stats.reused_verdicts,
        invalidated_verdicts: result.stats.invalidated_verdicts,
        rank,
    })
}

/// All records for a suite run.
#[derive(Debug, Clone, Default)]
pub struct SuiteResults {
    /// One record per (benchmark × technique).
    pub records: Vec<RunRecord>,
}

impl SuiteResults {
    /// Records of one technique.
    pub fn of(&self, t: Technique) -> impl Iterator<Item = &RunRecord> {
        self.records.iter().filter(move |r| r.technique == t)
    }

    /// Records of one technique restricted to easy or hard benchmarks.
    pub fn of_cat(&self, t: Technique, hard: bool) -> Vec<&RunRecord> {
        self.of(t)
            .filter(|r| r.category.is_hard() == hard)
            .collect()
    }
}

/// Runs the whole suite for the given techniques, printing progress.
///
/// On completion the machine-readable per-task record set is written to
/// `BENCH_synthesis.json` (override the path with `SICKLE_JSON`, disable
/// with `SICKLE_JSON=`), so the performance trajectory — wall-clock,
/// `time_analyze`, `time_eval`, candidates visited — is tracked across
/// revisions.
pub fn run_suite(techniques: &[Technique], hc: &HarnessConfig) -> SuiteResults {
    let mut results = SuiteResults::default();
    let suite = all_benchmarks();
    // One warm session for the whole suite: the set pool persists across
    // tasks and techniques, and each task's per-demonstration analysis
    // cache persists across its technique runs.
    let session = Session::new();
    for b in &suite {
        if !hc.only.is_empty() && !hc.only.contains(&b.id) {
            continue;
        }
        for &t in techniques {
            // A benchmark that fails to set up or solve is reported as a
            // structured error and skipped; it must not kill the suite.
            let rec = match run_one_in(&session, b, t, hc) {
                Ok(rec) => rec,
                Err(e) => {
                    eprintln!(
                        "[{:>2}/{}] {:9} {:55} ERROR [{}]: {e}",
                        b.id,
                        suite.len(),
                        t.label(),
                        b.name,
                        e.kind()
                    );
                    continue;
                }
            };
            eprintln!(
                "[{:>2}/{}] {:9} {:55} {} {:>8.2}s visited={}",
                b.id,
                suite.len(),
                t.label(),
                b.name,
                if rec.solved { "solved " } else { "TIMEOUT" },
                rec.elapsed.as_secs_f64(),
                rec.visited
            );
            results.records.push(rec);
        }
    }
    match write_bench_json(&results, hc) {
        Ok(Some(path)) => eprintln!("wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write bench JSON: {e}"),
    }
    results
}

/// Minimal JSON string escaping (benchmark names are plain ASCII, but the
/// writer must never emit malformed output). One escape table for the
/// whole crate: the wire codec and this artifact writer must not drift.
use crate::json::escape as json_escape;

/// Renders the suite results as the `BENCH_synthesis.json` document.
pub fn suite_results_json(res: &SuiteResults, hc: &HarnessConfig) -> String {
    let mut out = String::from("{\n  \"schema\": \"sickle-bench/synthesis/v1\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"timeout_secs\": {}, \"max_visited\": {}, \"seed\": {}, \"workers\": {}, \
         \"cache_policy\": \"{}\", \"cache_cap\": {}}},\n",
        hc.timeout.as_secs(),
        hc.max_visited,
        hc.seed,
        hc.workers,
        if hc.cache.cost_aware {
            "cost-aware"
        } else {
            "legacy"
        },
        hc.cache.cap
    ));
    out.push_str("  \"records\": [\n");
    for (i, r) in res.records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": {}, \"name\": \"{}\", \"category\": \"{}\", \"technique\": \"{}\", \
             \"solved\": {}, \"rank\": {}, \"wall_s\": {:.6}, \"time_analyze_s\": {:.6}, \
             \"time_eval_s\": {:.6}, \"time_materialize_s\": {:.6}, \"time_prefilter_s\": {:.6}, \
             \"time_match_s\": {:.6}, \"time_expand_s\": {:.6}, \"time_join_s\": {:.6}, \
             \"join_rows\": {}, \"visited\": {}, \"pruned\": {}, \
             \"cache_evictions\": {}, \"cache_demotions\": {}, \"cache_reevals\": {}, \
             \"cache_reeval_s\": {:.6}, \"reused_verdicts\": {}, \
             \"invalidated_verdicts\": {}, \"mem_bytes\": {}}}{}\n",
            r.id,
            json_escape(&r.name),
            r.category.label(),
            r.technique.label(),
            r.solved,
            r.rank.map_or("null".to_string(), |n| n.to_string()),
            r.elapsed.as_secs_f64(),
            r.time_analyze.as_secs_f64(),
            r.time_eval.as_secs_f64(),
            r.time_materialize.as_secs_f64(),
            r.time_prefilter.as_secs_f64(),
            r.time_match.as_secs_f64(),
            r.time_expand.as_secs_f64(),
            r.time_join.as_secs_f64(),
            r.join_rows,
            r.visited,
            r.pruned,
            r.cache_evictions,
            r.cache_demotions,
            r.cache_reevals,
            r.cache_reeval_time.as_secs_f64(),
            r.reused_verdicts,
            r.invalidated_verdicts,
            r.mem_bytes,
            if i + 1 == res.records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`suite_results_json`] to `SICKLE_JSON` (default
/// `BENCH_synthesis.json`; the empty string disables the artifact).
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_bench_json(
    res: &SuiteResults,
    hc: &HarnessConfig,
) -> std::io::Result<Option<std::path::PathBuf>> {
    let path = std::env::var("SICKLE_JSON").unwrap_or_else(|_| "BENCH_synthesis.json".to_string());
    if path.is_empty() {
        return Ok(None);
    }
    let path = std::path::PathBuf::from(path);
    std::fs::write(&path, suite_results_json(res, hc))?;
    Ok(Some(path))
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Renders Fig. 12: number of benchmarks solved within a time limit, per
/// technique, split easy/hard.
pub fn render_fig12(res: &SuiteResults) -> String {
    let limits = [
        0.1f64, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0,
    ];
    let mut out = String::new();
    for (label, hard) in [("EASY (43 tasks)", false), ("HARD (37 tasks)", true)] {
        out.push_str(&format!(
            "\nFig.12 — benchmarks solved within time limit — {label}\n"
        ));
        out.push_str(&format!("{:>10}", "limit(s)"));
        for t in Technique::ALL {
            out.push_str(&format!("{:>12}", t.label()));
        }
        out.push('\n');
        for &lim in &limits {
            out.push_str(&format!("{lim:>10.1}"));
            for t in Technique::ALL {
                let n = res
                    .of_cat(t, hard)
                    .iter()
                    .filter(|r| r.solved && r.elapsed.as_secs_f64() <= lim)
                    .count();
                out.push_str(&format!("{n:>12}"));
            }
            out.push('\n');
        }
    }
    out
}

fn quartiles(mut v: Vec<usize>) -> (usize, usize, usize, usize, usize) {
    if v.is_empty() {
        return (0, 0, 0, 0, 0);
    }
    v.sort_unstable();
    let q = |f: f64| v[((v.len() - 1) as f64 * f).round() as usize];
    (v[0], q(0.25), q(0.5), q(0.75), v[v.len() - 1])
}

/// Renders Fig. 13: distribution (five-number summary) of the number of
/// queries explored per technique, split easy/hard.
pub fn render_fig13(res: &SuiteResults) -> String {
    let mut out = String::new();
    for (label, hard) in [("EASY", false), ("HARD", true)] {
        out.push_str(&format!(
            "\nFig.13 — queries explored before solving (or budget) — {label}\n{:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}\n",
            "technique", "min", "q1", "median", "q3", "max", "mean"
        ));
        for t in Technique::ALL {
            let counts: Vec<usize> = res.of_cat(t, hard).iter().map(|r| r.visited).collect();
            let mean = if counts.is_empty() {
                0.0
            } else {
                counts.iter().sum::<usize>() as f64 / counts.len() as f64
            };
            let (min, q1, med, q3, max) = quartiles(counts);
            out.push_str(&format!(
                "{:>10} {min:>9} {q1:>9} {med:>9} {q3:>9} {max:>9} {mean:>10.0}\n",
                t.label()
            ));
        }
    }
    out
}

/// Renders Observation #1: headline solve counts, mean times, speedups and
/// the pruning statistic.
pub fn render_obs1(res: &SuiteResults) -> String {
    let mut out = String::new();
    out.push_str("\nObservation #1 — headline results\n");
    out.push_str(&format!(
        "{:>10} {:>7} {:>11} {:>11} {:>13} {:>13}\n",
        "technique", "solved", "solved-easy", "solved-hard", "mean-time(s)", "mean-visited"
    ));
    for t in Technique::ALL {
        let all: Vec<&RunRecord> = res.of(t).collect();
        let solved: Vec<&&RunRecord> = all.iter().filter(|r| r.solved).collect();
        let easy = res.of_cat(t, false).iter().filter(|r| r.solved).count();
        let hard = res.of_cat(t, true).iter().filter(|r| r.solved).count();
        let mean_t = if solved.is_empty() {
            f64::NAN
        } else {
            solved.iter().map(|r| r.elapsed.as_secs_f64()).sum::<f64>() / solved.len() as f64
        };
        let mean_v = if solved.is_empty() {
            0.0
        } else {
            solved.iter().map(|r| r.visited as f64).sum::<f64>() / solved.len() as f64
        };
        out.push_str(&format!(
            "{:>10} {:>7} {:>11} {:>11} {:>13.2} {:>13.0}\n",
            t.label(),
            solved.len(),
            easy,
            hard,
            mean_t,
            mean_v
        ));
    }

    // Pairwise comparisons on commonly-solved benchmarks.
    for other in [Technique::TypeAbs, Technique::ValueAbs] {
        let mut speedups = Vec::new();
        let mut visit_ratio = Vec::new();
        for rec in res.of(Technique::Provenance).filter(|r| r.solved) {
            if let Some(o) = res.of(other).find(|r| r.id == rec.id && r.solved) {
                let s = o.elapsed.as_secs_f64() / rec.elapsed.as_secs_f64().max(1e-4);
                speedups.push(s);
                visit_ratio.push(o.visited as f64 / rec.visited.max(1) as f64);
            }
        }
        if !speedups.is_empty() {
            let gm = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
            out.push_str(&format!(
                "vs {:9}: common-solved={} geo-mean speedup={:.1}x geo-mean visit ratio={:.1}x\n",
                other.label(),
                speedups.len(),
                gm(&speedups),
                gm(&visit_ratio)
            ));
        }
    }

    // Pruning statistic: fraction of the no-prune exploration avoided is
    // approximated by visited ratios (paper: 97.08% fewer queries visited).
    let mut reductions = Vec::new();
    for rec in res.of(Technique::Provenance) {
        let best_other = Technique::ALL
            .iter()
            .filter(|&&t| t != Technique::Provenance)
            .filter_map(|&t| res.of(t).find(|r| r.id == rec.id))
            .map(|r| r.visited)
            .max();
        if let Some(v) = best_other {
            if v > 0 {
                reductions.push(1.0 - rec.visited as f64 / v as f64);
            }
        }
    }
    if !reductions.is_empty() {
        let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
        out.push_str(&format!(
            "mean reduction in visited queries vs weakest abstraction: {:.2}%\n",
            mean * 100.0
        ));
    }
    out
}

/// Renders the §5.2 ranking table for Sickle's returned solutions.
pub fn render_ranking(res: &SuiteResults) -> String {
    let mut top1 = 0;
    let mut top2to9 = 0;
    let mut beyond = 0;
    let mut unsolved = 0;
    for r in res.of(Technique::Provenance) {
        match r.rank {
            Some(1) => top1 += 1,
            Some(n) if n <= 9 => top2to9 += 1,
            Some(_) => beyond += 1,
            None => unsolved += 1,
        }
    }
    format!(
        "\n§5.2 ranking of the correct query among Sickle's solutions\n\
         rank 1: {top1}\nrank 2–9: {top2to9}\nrank ≥10: {beyond}\nunsolved: {unsolved}\n\
         (paper: 71 / 4 / 1 / 4)\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_five_number_summary() {
        let (min, q1, med, q3, max) = quartiles(vec![5, 1, 3, 2, 4]);
        assert_eq!((min, q1, med, q3, max), (1, 2, 3, 4, 5));
        assert_eq!(quartiles(vec![]), (0, 0, 0, 0, 0));
    }

    #[test]
    fn harness_config_defaults() {
        let hc = HarnessConfig::from_env();
        assert!(hc.timeout.as_secs() > 0);
        assert!(hc.max_visited > 0);
    }

    #[test]
    fn suite_json_is_well_formed() {
        let hc = HarnessConfig {
            timeout: Duration::from_secs(1),
            max_visited: 10,
            seed: 2022,
            only: vec![],
            workers: 1,
            cache: CachePolicy::default(),
        };
        let res = SuiteResults {
            records: vec![
                RunRecord {
                    id: 1,
                    name: "a \"quoted\" name".to_string(),
                    category: sickle_benchmarks::Category::ForumEasy,
                    technique: Technique::Provenance,
                    solved: true,
                    elapsed: Duration::from_millis(125),
                    time_analyze: Duration::from_millis(50),
                    time_eval: Duration::from_millis(25),
                    time_materialize: Duration::from_millis(15),
                    time_prefilter: Duration::from_millis(4),
                    time_match: Duration::from_millis(6),
                    time_expand: Duration::from_millis(5),
                    time_join: Duration::from_millis(3),
                    join_rows: 1234,
                    visited: 42,
                    pruned: 7,
                    cache_evictions: 12,
                    cache_demotions: 3,
                    cache_reevals: 5,
                    cache_reeval_time: Duration::from_millis(2),
                    mem_bytes: 123_456,
                    reused_verdicts: 17,
                    invalidated_verdicts: 4,
                    rank: Some(1),
                },
                RunRecord {
                    id: 2,
                    name: "unsolved".to_string(),
                    category: sickle_benchmarks::Category::TpcDs,
                    technique: Technique::TypeAbs,
                    solved: false,
                    elapsed: Duration::from_secs(1),
                    time_analyze: Duration::ZERO,
                    time_eval: Duration::ZERO,
                    time_materialize: Duration::ZERO,
                    time_prefilter: Duration::ZERO,
                    time_match: Duration::ZERO,
                    time_expand: Duration::ZERO,
                    time_join: Duration::ZERO,
                    join_rows: 0,
                    visited: 10,
                    pruned: 0,
                    cache_evictions: 0,
                    cache_demotions: 0,
                    cache_reevals: 0,
                    cache_reeval_time: Duration::ZERO,
                    mem_bytes: 0,
                    reused_verdicts: 0,
                    invalidated_verdicts: 0,
                    rank: None,
                },
            ],
        };
        let json = suite_results_json(&res, &hc);
        assert!(json.contains("\"schema\": \"sickle-bench/synthesis/v1\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"time_analyze_s\": 0.050000"));
        assert!(json.contains("\"time_materialize_s\": 0.015000"));
        assert!(json.contains("\"time_prefilter_s\": 0.004000"));
        assert!(json.contains("\"time_match_s\": 0.006000"));
        assert!(json.contains("\"time_join_s\": 0.003000"));
        assert!(json.contains("\"join_rows\": 1234"));
        assert!(json.contains("\"cache_evictions\": 12"));
        assert!(json.contains("\"cache_demotions\": 3"));
        assert!(json.contains("\"cache_reevals\": 5"));
        assert!(json.contains("\"cache_reeval_s\": 0.002000"));
        assert!(json.contains("\"reused_verdicts\": 17"));
        assert!(json.contains("\"invalidated_verdicts\": 4"));
        assert!(json.contains("\"mem_bytes\": 123456"));
        assert!(json.contains("\"cache_policy\": \"cost-aware\""));
        assert!(json.contains("\"rank\": null"));
        assert!(json.contains("\"technique\": \"type-abs\""));
        // Balanced braces/brackets (cheap well-formedness probe: the
        // writer emits no strings containing braces).
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Two record lines, separated by exactly one trailing comma.
        let record_lines: Vec<&str> = json
            .lines()
            .filter(|l| l.trim_start().starts_with("{\"id\":"))
            .collect();
        assert_eq!(record_lines.len(), 2);
        assert!(record_lines[0].ends_with("},"));
        assert!(record_lines[1].ends_with('}'));
    }

    #[test]
    fn easy_group_benchmark_solves_quickly_with_all_techniques() {
        let suite = all_benchmarks();
        let b = &suite[0]; // sales: total revenue per region
        let hc = HarnessConfig {
            timeout: Duration::from_secs(30),
            max_visited: 500_000,
            seed: 2022,
            only: vec![],
            workers: 1,
            cache: CachePolicy::default(),
        };
        for t in Technique::ALL {
            let rec = run_one(b, t, &hc).expect("benchmark 1 runs");
            assert!(rec.solved, "{} failed on benchmark 1", t.label());
        }
    }

    #[test]
    fn provenance_visits_fewer_than_baselines_on_medium_task() {
        let suite = all_benchmarks();
        // Benchmark 8: share-of-region-total, size 2 — enough structure to
        // differentiate pruning power.
        let b = &suite[7];
        let hc = HarnessConfig {
            timeout: Duration::from_secs(60),
            max_visited: 2_000_000,
            seed: 2022,
            only: vec![],
            workers: 1,
            cache: CachePolicy::default(),
        };
        let prov = run_one(b, Technique::Provenance, &hc).expect("runs");
        let ty = run_one(b, Technique::TypeAbs, &hc).expect("runs");
        assert!(prov.solved, "provenance failed: {prov:?}");
        assert!(
            prov.visited <= ty.visited,
            "provenance visited {} > type {}",
            prov.visited,
            ty.visited
        );
    }
}
