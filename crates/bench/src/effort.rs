//! Specification-effort model substituting the §5.3 user study.
//!
//! Humans cannot be re-run; this model reproduces the study's *quantitative
//! skeleton* from measurable properties of each task's demonstration:
//!
//! * **examples** (classical PBE): for every demonstrated cell the user
//!   must locate every contributing input value and mentally aggregate —
//!   cost grows with the cell's full provenance size;
//! * **full expressions**: the user types a reference per contributing
//!   value — no mental arithmetic, but a typing overhead per reference
//!   (participants reported typing as the main cost, §5.3);
//! * **partial expressions**: at most [`MAX_DEMO_VALUES`] references plus
//!   an omission judgment;
//! * **ranking cells** are special-cased: counting smaller values mentally
//!   is faster than transcribing every peer, which is exactly the task
//!   where the study found *examples* faster than expressions.
//!
//! The model's constants are calibrated qualitatively, not fitted; the
//! reproduced claims are directional (which mode wins where), mirroring how
//! the paper reports significance rather than absolute seconds.

use sickle_benchmarks::{Benchmark, MAX_DEMO_VALUES};
use sickle_core::prov_evaluate;
use sickle_provenance::{Expr, FuncName};

/// Effort units (arbitrary scale) for one task under the three
/// specification modes of the §5.3 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskEffort {
    /// Classical input-output example.
    pub example: f64,
    /// Complete computation expressions.
    pub full_expr: f64,
    /// Partial expressions with `♦`.
    pub partial_expr: f64,
}

/// Cost constants of the model.
const LOCATE_COST: f64 = 1.0; // finding one input value in the sheet
const MENTAL_AGG_COST: f64 = 0.6; // folding one more value into a running result
const TYPE_REF_COST: f64 = 1.2; // typing one cell reference
const OMISSION_COST: f64 = 1.5; // deciding what can be safely omitted
const WRITE_VALUE_COST: f64 = 1.0; // writing the final value / expression shell
const COUNT_COST: f64 = 0.45; // comparing one peer while counting a rank

fn is_rank(e: &Expr) -> bool {
    matches!(e, Expr::Apply(FuncName::Rank | FuncName::DenseRank, _))
}

fn cell_effort(e: &Expr) -> TaskEffort {
    let refs = e.refs().len() as f64;
    if is_rank(e) {
        // Counting beats transcription for ranks (§5.3 qualitative finding).
        let peers = refs - 1.0;
        let omission = if refs > MAX_DEMO_VALUES as f64 {
            OMISSION_COST
        } else {
            0.0
        };
        return TaskEffort {
            example: peers * COUNT_COST + WRITE_VALUE_COST,
            full_expr: refs * TYPE_REF_COST + WRITE_VALUE_COST,
            partial_expr: (refs.min(MAX_DEMO_VALUES as f64)) * TYPE_REF_COST
                + omission
                + WRITE_VALUE_COST,
        };
    }
    TaskEffort {
        example: refs * (LOCATE_COST + MENTAL_AGG_COST) + WRITE_VALUE_COST,
        full_expr: refs * (LOCATE_COST + TYPE_REF_COST) + WRITE_VALUE_COST,
        partial_expr: refs.min(MAX_DEMO_VALUES as f64) * (LOCATE_COST + TYPE_REF_COST)
            + if refs > MAX_DEMO_VALUES as f64 {
                OMISSION_COST
            } else {
                0.0
            }
            + WRITE_VALUE_COST,
    }
}

/// Computes the modeled effort of specifying `rows` demonstration rows for
/// a benchmark (the study used 3 rows; the harness default matches the
/// demo generator's 2).
pub fn task_effort(b: &Benchmark, rows: usize) -> Option<TaskEffort> {
    let star = prov_evaluate(&b.ground_truth, &b.inputs).ok()?;
    let n = rows.min(star.n_rows());
    let mut total = TaskEffort {
        example: 0.0,
        full_expr: 0.0,
        partial_expr: 0.0,
    };
    for r in 0..n {
        for &c in &b.out_cols {
            let e = cell_effort(&star[(r, c)]);
            total.example += e.example;
            total.full_expr += e.full_expr;
            total.partial_expr += e.partial_expr;
        }
    }
    Some(total)
}

/// Renders the §5.3-style comparison across the suite.
pub fn render_userstudy(suite: &[Benchmark]) -> String {
    let mut out = String::new();
    out.push_str("\n§5.3 specification-effort model (user-study substitution)\n");
    out.push_str(&format!(
        "{:>12} {:>5} {:>10} {:>10} {:>12} {:>9}\n",
        "suite", "n", "example", "full-expr", "partial-expr", "winner"
    ));
    for (label, hard) in [("easy", false), ("hard", true)] {
        let efforts: Vec<TaskEffort> = suite
            .iter()
            .filter(|b| b.category.is_hard() == hard)
            .filter_map(|b| task_effort(b, 3))
            .collect();
        let n = efforts.len();
        let avg = |f: fn(&TaskEffort) -> f64| efforts.iter().map(f).sum::<f64>() / n.max(1) as f64;
        let (e, fx, px) = (
            avg(|t| t.example),
            avg(|t| t.full_expr),
            avg(|t| t.partial_expr),
        );
        let winner = if e <= fx && e <= px {
            "example"
        } else if px <= fx {
            "partial"
        } else {
            "full"
        };
        out.push_str(&format!(
            "{label:>12} {n:>5} {e:>10.1} {fx:>10.1} {px:>12.1} {winner:>9}\n"
        ));
    }

    // The ranking anomaly: on rank-style tasks examples win.
    let rank_tasks: Vec<TaskEffort> = suite
        .iter()
        .filter(|b| {
            prov_evaluate(&b.ground_truth, &b.inputs)
                .map(|star| b.out_cols.iter().any(|&c| is_rank(&star[(0, c)])))
                .unwrap_or(false)
        })
        .filter_map(|b| task_effort(b, 3))
        .collect();
    if !rank_tasks.is_empty() {
        let n = rank_tasks.len() as f64;
        let e = rank_tasks.iter().map(|t| t.example).sum::<f64>() / n;
        let fx = rank_tasks.iter().map(|t| t.full_expr).sum::<f64>() / n;
        out.push_str(&format!(
            "rank-style tasks ({}): example={:.1} vs full-expr={:.1} — examples win, as in the study\n",
            rank_tasks.len(),
            e,
            fx
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sickle_benchmarks::all_benchmarks;

    #[test]
    fn partial_at_most_an_omission_above_full() {
        // Omitting is only *worth it* for wide expressions; for narrow ones
        // the omission judgment itself is the only possible extra cost
        // (one per demonstrated cell).
        for b in all_benchmarks() {
            if let Some(t) = task_effort(&b, 3) {
                let cells = 3.0 * b.out_cols.len() as f64;
                assert!(
                    t.partial_expr <= t.full_expr + cells * OMISSION_COST + 1e-9,
                    "benchmark {}: partial {} ≫ full {}",
                    b.id,
                    t.partial_expr,
                    t.full_expr
                );
            }
        }
    }

    #[test]
    fn examples_win_on_rank_cells() {
        // A pure rank expression over 10 peers.
        let e = Expr::Apply(
            FuncName::Rank,
            (0..11)
                .map(|i| Expr::Ref(sickle_provenance::CellRef::new(0, i, 0)))
                .collect(),
        );
        let c = cell_effort(&e);
        assert!(c.example < c.full_expr);
        assert!(c.example < c.partial_expr);
    }

    #[test]
    fn expressions_win_on_wide_aggregations() {
        let e = Expr::apply(
            FuncName::Agg(sickle_table::AggFunc::Sum),
            (0..16)
                .map(|i| Expr::Ref(sickle_provenance::CellRef::new(0, i, 0)))
                .collect(),
        );
        let c = cell_effort(&e);
        assert!(c.partial_expr < c.example);
    }

    #[test]
    fn hard_tasks_favor_partial_expressions() {
        let suite = all_benchmarks();
        let out = render_userstudy(&suite);
        // The hard row must not declare "example" the winner.
        let hard_line = out
            .lines()
            .find(|l| l.trim_start().starts_with("hard"))
            .unwrap();
        assert!(
            !hard_line.contains("example"),
            "hard suite should favor expressions: {hard_line}"
        );
    }
}
