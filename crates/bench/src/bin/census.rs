//! E9: benchmark feature census (§5.1).

use sickle_benchmarks::{all_benchmarks, Category};

fn main() {
    let suite = all_benchmarks();
    let count =
        |f: &dyn Fn(&sickle_benchmarks::Benchmark) -> bool| suite.iter().filter(|b| f(b)).count();
    println!("Benchmark census ({} tasks)", suite.len());
    println!(
        "easy={} hard-forum={} tpcds={}",
        count(&|b| b.category == Category::ForumEasy),
        count(&|b| b.category == Category::ForumHard),
        count(&|b| b.category == Category::TpcDs),
    );
    println!(
        "join={} partition={} group={} filter={} sort={}   (paper: join=24 partition=51 group=32)",
        count(&|b| b.features().join),
        count(&|b| b.features().partition),
        count(&|b| b.features().group),
        count(&|b| b.features().filter),
        count(&|b| b.features().sort),
    );
    let mut sizes: Vec<usize> = suite.iter().map(|b| b.ground_truth.size()).collect();
    sizes.sort_unstable();
    println!(
        "query sizes: min={} median={} max={}",
        sizes[0],
        sizes[sizes.len() / 2],
        sizes[sizes.len() - 1]
    );
}
