//! Warm-edit scenario driver: scripted demonstration edits on suite
//! tasks, each solved cold (fresh session) and as a warm edit (retained
//! prior on a warm session). Prints a per-edit latency table, writes
//! `BENCH_edit.json` (`SICKLE_JSON` overrides the path, the empty string
//! disables it) and, with `--dump-dir DIR`, one `<label>.cold.txt` /
//! `<label>.warm.txt` solution dump per edit so CI can `cmp` the pair.
//!
//! Exits nonzero if any warm solution list diverges from its cold
//! oracle.
//!
//! ```text
//! sickle-edit [--quick] [--ids 1,8,44] [--max-visited N] [--dump-dir DIR]
//! ```

use std::io::Write;
use std::path::PathBuf;

use sickle_bench::{edit_results_json, run_edit_scenario};

fn main() {
    let mut ids: Vec<usize> = vec![1, 2, 3, 8, 44];
    let mut budget = 20_000;
    let mut dump_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {
                ids = vec![1, 44];
                budget = 8_000;
            }
            "--ids" => {
                let v = args.next().unwrap_or_default();
                ids = v.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                if ids.is_empty() {
                    eprintln!("sickle-edit: --ids needs a comma-separated id list");
                    std::process::exit(2);
                }
            }
            "--max-visited" => {
                budget = match args.next().and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => {
                        eprintln!("sickle-edit: --max-visited needs an integer");
                        std::process::exit(2);
                    }
                };
            }
            "--dump-dir" => {
                dump_dir = Some(PathBuf::from(args.next().unwrap_or_default()));
            }
            other => {
                eprintln!("sickle-edit: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let seed = std::env::var("SICKLE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2022);

    println!("edit scenario: ids={ids:?} max_visited={budget} seed={seed}");
    let res = match run_edit_scenario(&ids, budget, seed) {
        Ok(res) => res,
        Err(e) => {
            eprintln!("sickle-edit: scenario failed [{}]: {e}", e.kind());
            std::process::exit(1);
        }
    };
    for r in &res.records {
        println!(
            "## {:2} {:<28} {:<14} cold={:.3}s warm={:.3}s reused={} invalidated={} \
             solutions={}{}",
            r.id,
            r.name,
            r.edit,
            r.cold_s,
            r.warm_s,
            r.reused_verdicts,
            r.invalidated_verdicts,
            r.solutions,
            if r.matched { "" } else { "  MISMATCH" }
        );
    }
    let (geo_cold, geo_warm) = res.geo_means();
    println!(
        "geo-mean cold={geo_cold:.3}s warm={geo_warm:.3}s speedup={:.2}x over {} edits",
        if geo_warm > 0.0 {
            geo_cold / geo_warm
        } else {
            0.0
        },
        res.records.len()
    );

    if let Some(dir) = &dump_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("sickle-edit: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
        for (label, cold, warm) in &res.dumps {
            for (kind, text) in [("cold", cold), ("warm", warm)] {
                let path = dir.join(format!("{label}.{kind}.txt"));
                if let Err(e) =
                    std::fs::File::create(&path).and_then(|mut f| f.write_all(text.as_bytes()))
                {
                    eprintln!("sickle-edit: cannot write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
        }
        eprintln!("wrote {} dump pairs to {}", res.dumps.len(), dir.display());
    }

    // SICKLE_JSON: explicit path, empty string disables, default
    // BENCH_edit.json (same convention as the synthesis harness).
    let json_path = match std::env::var("SICKLE_JSON") {
        Ok(p) if p.is_empty() => None,
        Ok(p) => Some(PathBuf::from(p)),
        Err(_) => Some(PathBuf::from("BENCH_edit.json")),
    };
    if let Some(path) = json_path {
        match std::fs::write(&path, edit_results_json(&res, budget, seed)) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    if !res.all_matched() {
        eprintln!("sickle-edit: warm-edit solutions diverged from the cold oracle");
        std::process::exit(1);
    }
}
