//! E8: §5.3 user-study substitution (specification-effort model).

use sickle_bench::effort::render_userstudy;
use sickle_benchmarks::all_benchmarks;

fn main() {
    print!("{}", render_userstudy(&all_benchmarks()));
}
