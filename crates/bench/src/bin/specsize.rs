//! E7: demonstration size vs full-example size (§5.2: "average user
//! demonstration size is 9 cells; it would be 50 with full output").

use sickle_benchmarks::all_benchmarks;

fn main() {
    let suite = all_benchmarks();
    let mut demo_cells = 0usize;
    let mut full_cells = 0usize;
    let mut n = 0usize;
    for b in &suite {
        if let Ok((_, gen)) = b.task(2022) {
            demo_cells += gen.demo.n_cells();
            full_cells += gen.full_example_cells;
            n += 1;
        }
    }
    println!("E7 — specification size over {n} benchmarks");
    println!(
        "avg demonstration cells: {:.1}   (paper: 9)",
        demo_cells as f64 / n as f64
    );
    println!(
        "avg full-output example cells: {:.1}   (paper: 50)",
        full_cells as f64 / n as f64
    );
}
