//! `sickle-shard` — fault-tolerant sharded suite driver.
//!
//! Partitions the benchmark suite across `--shards N` freshly spawned
//! `sickle-serve --listen unix:…` processes, drives them concurrently
//! over a shared work queue, and deterministically merges the responses
//! into the same artifacts the single-process `solutions` oracle
//! produces: the byte-identical solution dump on stdout and
//! `BENCH_synthesis.json` (`SICKLE_JSON` overrides the path).
//!
//! Robustness is the point, not raw speed:
//!
//! * connection failures are retried with exponential backoff;
//! * each shard process runs under a **supervisor**: a shard that dies
//!   mid-run (crash, injected `exit@request` fault, kill) has its
//!   in-flight task requeued and is *respawned* with capped exponential
//!   backoff — up to a restart budget, beyond which the shard is
//!   declared failed and the run reports a structured failure. A shard
//!   that exits with the config-error code (2: bad flags, malformed
//!   `SICKLE_FAULT`) is never restarted — retrying cannot heal a
//!   configuration;
//! * `overloaded` responses honor the server's `retry_after_ms` hint
//!   (exponential backoff when absent); `resource_exhausted` responses
//!   are retried only after a deterministic jittered delay, and only a
//!   bounded number of times; `invalid_request` and other structured
//!   errors are terminal for that task (never retried);
//! * with `--journal PATH` every claimed task and every terminal outcome
//!   (full response line + digest, fsync'd) goes to an append-only
//!   newline-JSON work journal; `--resume PATH` replays it after a
//!   killed run, re-running only incomplete tasks and merging
//!   byte-identically;
//! * the run fails loudly (exit 1) if any task is left uncovered.
//!
//! Per-shard fault injection for tests: `SICKLE_SHARD_FAULT_<i>` (0-based
//! shard index) becomes that shard's `SICKLE_FAULT`.
//!
//! ```text
//! SICKLE_MAX_VISITED=20000 cargo run -p sickle-bench --release --bin sickle-shard -- --shards 4
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sickle_bench::corpus::{
    default_corpus_dir, load_corpus, outcome_from_response, render_dump, results_json, wire_line,
    CorpusFilters,
};
use sickle_bench::runner::HarnessConfig;
use sickle_bench::{write_bench_json, Json, RunRecord, SuiteResults, Technique};
use sickle_benchmarks::all_benchmarks;

const USAGE: &str = "\
sickle-shard: run the benchmark suite across N sickle-serve processes

USAGE:
    sickle-shard [--shards N] [--serve-bin PATH] [--corpus DIR]
                 [--journal PATH | --resume PATH]

Prints the deterministic solution dump (byte-identical to the
single-process `solutions` bin) on stdout and writes the merged
BENCH_synthesis.json. Honors SICKLE_MAX_VISITED, SICKLE_SEED,
SICKLE_ONLY and SICKLE_JSON like `solutions` does. The serve binary
defaults to the sickle-serve next to this executable (override with
--serve-bin or SICKLE_SERVE_BIN). SICKLE_SHARD_FAULT_<i> injects a
SICKLE_FAULT spec into shard i for robustness tests.

Each shard runs under a supervisor: a crashed serve process is
respawned with capped exponential backoff (at most 5 restarts per
60s window, then the shard is declared failed); a serve process that
exits with the config-error code 2 is never restarted.

--journal PATH appends every claimed task and terminal outcome (full
response line, digested and fsync'd) to a newline-JSON work journal.
After the driver itself is killed, --resume PATH replays that journal:
already-finished tasks are merged from their recorded responses and
only incomplete tasks are re-run, producing byte-identical output.
--resume keeps appending to the same journal.

With --corpus DIR the work source is a frozen corpus instead of the
built-in suite: every bundle is shipped as a self-contained wire
request, and the merged output is the corpus dump + digest,
byte-identical to `sickle-corpus run --dir DIR` (BENCH_corpus.json is
written instead of BENCH_synthesis.json).
";

/// How a task ended on some shard.
struct TaskOutcome {
    response: Json,
}

struct Merged {
    outcomes: HashMap<usize, TaskOutcome>,
    /// Tasks that got a terminal (non-retryable) error response.
    failed: Vec<(usize, String)>,
}

/// Everything needed to (re)spawn one shard's serve process.
struct ShardSpec {
    index: usize,
    sock: PathBuf,
    serve_bin: PathBuf,
    fault: Option<String>,
}

/// Work queue with in-flight tracking. A driver whose queue looks empty
/// must NOT exit while another shard still has a task in flight: if that
/// shard dies, its task is requeued and somebody has to be around to
/// absorb it. Drivers block on the condvar until the queue is truly
/// drained (empty AND nothing in flight).
struct WorkQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    queue: VecDeque<usize>,
    inflight: usize,
}

impl WorkQueue {
    fn new(tasks: impl IntoIterator<Item = usize>) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                queue: tasks.into_iter().collect(),
                inflight: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Claims the next task, blocking while other shards might still
    /// requeue theirs. `None` once the suite is truly drained.
    fn claim(&self) -> Option<usize> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(id) = state.queue.pop_front() {
                state.inflight += 1;
                return Some(id);
            }
            if state.inflight == 0 {
                return None;
            }
            // Timed wait so a lost wakeup can never wedge the driver.
            let (next, _) = self
                .cv
                .wait_timeout(state, Duration::from_millis(100))
                .expect("queue lock");
            state = next;
        }
    }

    /// The claimed task reached a terminal outcome (ok or structured
    /// non-retryable error).
    fn complete(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.inflight -= 1;
        self.cv.notify_all();
    }

    /// The claimed task's shard connection broke: put the task back for
    /// whoever can take it (including this shard after a reconnect).
    fn requeue(&self, id: usize) {
        let mut state = self.state.lock().expect("queue lock");
        state.queue.push_front(id);
        state.inflight -= 1;
        self.cv.notify_all();
    }

    fn leftover(&self) -> usize {
        let state = self.state.lock().expect("queue lock");
        state.queue.len() + state.inflight
    }
}

fn log(msg: std::fmt::Arguments<'_>) {
    eprintln!("sickle-shard: {msg}");
}

// ---------------------------------------------------------------------------
// Work journal (checkpointed resume)
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit digest of a recorded response line, guarding a resumed
/// run against truncated or hand-edited journal entries.
fn fnv1a64(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Append-only newline-JSON work journal. `claimed` marks a task handed
/// to a shard; `done`/`failed` record its terminal outcome — `done`
/// carries the full response line plus its digest so a resumed run
/// merges byte-identically without re-running the task. Every line is
/// fsync'd before the task is marked complete in the queue, so a
/// SIGKILL'd driver never loses a finished task.
struct Journal {
    file: Mutex<std::fs::File>,
}

impl Journal {
    fn open(path: &std::path::Path) -> std::io::Result<Journal> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Journal {
            file: Mutex::new(file),
        })
    }

    fn append(&self, json: &Json) {
        let mut line = json.render();
        line.push('\n');
        let mut file = self.file.lock().expect("journal lock");
        if let Err(e) = file
            .write_all(line.as_bytes())
            .and_then(|()| file.sync_data())
        {
            // A journal the run cannot trust is worse than no journal:
            // fail loudly now instead of resuming wrong later.
            log(format_args!("journal write failed: {e}"));
            std::process::exit(1);
        }
    }

    fn start(&self, mode: &str, tasks: usize) {
        self.append(&Json::Obj(vec![
            ("event".into(), Json::str("start")),
            ("mode".into(), Json::str(mode)),
            ("tasks".into(), Json::num(tasks as f64)),
        ]));
    }

    fn claimed(&self, task: usize) {
        self.append(&Json::Obj(vec![
            ("event".into(), Json::str("claimed")),
            ("task".into(), Json::num(task as f64)),
        ]));
    }

    fn done(&self, task: usize, response: &Json) {
        let rendered = response.render();
        self.append(&Json::Obj(vec![
            ("event".into(), Json::str("done")),
            ("task".into(), Json::num(task as f64)),
            ("digest".into(), Json::str(fnv1a64(&rendered))),
            ("response".into(), Json::str(rendered)),
        ]));
    }

    fn failed(&self, task: usize, detail: &str) {
        self.append(&Json::Obj(vec![
            ("event".into(), Json::str("failed")),
            ("task".into(), Json::num(task as f64)),
            ("detail".into(), Json::str(detail)),
        ]));
    }
}

/// Terminal outcomes replayed from a `--resume` journal.
struct Replayed {
    mode: Option<String>,
    outcomes: HashMap<usize, Json>,
    failed: Vec<(usize, String)>,
}

/// Replays a work journal. A malformed line in the *middle* is corrupt
/// (the run must not silently resume from it); a malformed *final* line
/// is the expected trace of a SIGKILL mid-write and is ignored — its
/// task simply re-runs.
fn replay_journal(path: &std::path::Path) -> Result<Replayed, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read journal {}: {e}", path.display()))?;
    let lines: Vec<&str> = text.lines().collect();
    let mut replayed = Replayed {
        mode: None,
        outcomes: HashMap::new(),
        failed: Vec::new(),
    };
    for (n, raw) in lines.iter().enumerate() {
        let last = n + 1 == lines.len();
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let fail = |what: String| format!("journal line {}: {what}", n + 1);
        let truncated = |what: String| -> Result<(), String> {
            if last {
                log(format_args!(
                    "ignoring truncated final journal line ({what}); its task will re-run"
                ));
                Ok(())
            } else {
                Err(fail(what))
            }
        };
        let json = match Json::parse(raw) {
            Ok(json) => json,
            Err(e) => {
                truncated(format!("unparsable: {e}"))?;
                break;
            }
        };
        let event = json.get("event").and_then(Json::as_str).unwrap_or("");
        let task = json.get("task").and_then(Json::as_f64).map(|v| v as usize);
        match event {
            "start" => {
                replayed.mode = json.get("mode").and_then(Json::as_str).map(str::to_string);
            }
            // Informational: a claimed task without a terminal event
            // simply re-runs.
            "claimed" => {}
            "done" => {
                let task = task.ok_or_else(|| fail("done without task".into()))?;
                let rendered = json
                    .get("response")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail("done without response".into()))?;
                let digest = json.get("digest").and_then(Json::as_str).unwrap_or("");
                if digest != fnv1a64(rendered) {
                    truncated("response digest mismatch".into())?;
                    break;
                }
                let response = Json::parse(rendered)
                    .map_err(|e| fail(format!("bad recorded response: {e}")))?;
                replayed.outcomes.insert(task, response);
            }
            "failed" => {
                let task = task.ok_or_else(|| fail("failed without task".into()))?;
                let detail = json
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                replayed.failed.push((task, detail));
            }
            other => return Err(fail(format!("unknown event {other:?}"))),
        }
    }
    Ok(replayed)
}

fn main() {
    let mut shards = 2usize;
    let mut serve_bin: Option<PathBuf> = None;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut journal_path: Option<PathBuf> = None;
    let mut resume = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("sickle-shard: --shards needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--serve-bin" => {
                serve_bin = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("sickle-shard: --serve-bin needs a path");
                    std::process::exit(2);
                })));
            }
            "--corpus" => {
                corpus_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("sickle-shard: --corpus needs a directory (e.g. corpus/v1)");
                    std::process::exit(2);
                })));
            }
            "--journal" | "--resume" => {
                resume = resume || arg == "--resume";
                journal_path = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("sickle-shard: {arg} needs a journal path");
                    std::process::exit(2);
                })));
            }
            other => {
                eprintln!("sickle-shard: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let hc = HarnessConfig::from_env();
    let budget = std::env::var("SICKLE_MAX_VISITED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let serve_bin = serve_bin
        .or_else(|| std::env::var("SICKLE_SERVE_BIN").ok().map(PathBuf::from))
        .unwrap_or_else(default_serve_bin);

    // The corpus bundles (corpus mode only), indexed by wire id.
    let bundles = corpus_dir.as_ref().map(|dir| {
        let dir = if dir.as_os_str().is_empty() {
            default_corpus_dir()
        } else {
            dir.clone()
        };
        match load_corpus(&dir, &CorpusFilters::default()) {
            Ok(bundles) if bundles.is_empty() => {
                log(format_args!("corpus {} is empty", dir.display()));
                std::process::exit(1);
            }
            Ok(bundles) => (dir, bundles),
            Err(e) => {
                log(format_args!("cannot load corpus: {e}"));
                std::process::exit(1);
            }
        }
    });

    // Every task's request line is prebuilt so drive_shard is agnostic to
    // the work source (suite benchmarks vs corpus bundles).
    let lines: HashMap<usize, String> = match &bundles {
        Some((_, bundles)) => bundles
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let line = wire_line(b, &Json::num(i as f64)).unwrap_or_else(|e| {
                    log(format_args!("cannot encode bundle {}: {e}", b.id));
                    std::process::exit(1);
                });
                (i, line)
            })
            .collect(),
        None => all_benchmarks()
            .iter()
            .filter(|b| hc.only.is_empty() || hc.only.contains(&b.id))
            .map(|b| {
                let id = b.id;
                let seed = hc.seed;
                let line = format!(
                    "{{\"id\": {id}, \"benchmark\": {id}, \"seed\": {seed}, \
                     \"budget\": {{\"timeout_secs\": null, \"max_visited\": {budget}, \
                     \"max_solutions\": 10}}}}"
                );
                (id, line)
            })
            .collect(),
    };
    let mut tasks: Vec<usize> = lines.keys().copied().collect();
    tasks.sort_unstable();
    if tasks.is_empty() {
        log(format_args!(
            "no tasks selected (SICKLE_ONLY filtered everything)"
        ));
        std::process::exit(1);
    }

    // Replay a resumed journal: finished tasks are merged from their
    // recorded responses; only incomplete tasks go back on the queue.
    let mode = if bundles.is_some() { "corpus" } else { "suite" };
    let mut seeded = Merged {
        outcomes: HashMap::new(),
        failed: Vec::new(),
    };
    if resume {
        let path = journal_path.as_ref().expect("--resume sets the path");
        let replayed = replay_journal(path).unwrap_or_else(|e| {
            log(format_args!("cannot resume: {e}"));
            std::process::exit(2);
        });
        if let Some(m) = &replayed.mode {
            if m != mode {
                log(format_args!(
                    "cannot resume: journal records a {m} run, this is a {mode} run"
                ));
                std::process::exit(2);
            }
        }
        for (id, response) in replayed.outcomes {
            if lines.contains_key(&id) {
                seeded.outcomes.insert(id, TaskOutcome { response });
            }
        }
        seeded.failed = replayed.failed;
        log(format_args!(
            "resuming: {} finished task(s) replayed from {}",
            seeded.outcomes.len() + seeded.failed.len(),
            path.display()
        ));
    }
    let finished: HashSet<usize> = seeded
        .outcomes
        .keys()
        .copied()
        .chain(seeded.failed.iter().map(|(id, _)| *id))
        .collect();
    let pending: Vec<usize> = tasks
        .iter()
        .copied()
        .filter(|id| !finished.contains(id))
        .collect();

    let journal = journal_path.as_ref().map(|path| {
        let fresh = std::fs::metadata(path)
            .map(|m| m.len() == 0)
            .unwrap_or(true);
        let journal = Journal::open(path).unwrap_or_else(|e| {
            log(format_args!("cannot open journal {}: {e}", path.display()));
            std::process::exit(2);
        });
        if fresh {
            journal.start(mode, tasks.len());
        }
        Arc::new(journal)
    });

    let sock_dir = std::env::temp_dir().join(format!("sickle-shard-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&sock_dir) {
        log(format_args!("cannot create {}: {e}", sock_dir.display()));
        std::process::exit(1);
    }

    let queue = Arc::new(WorkQueue::new(pending.iter().copied()));
    let merged = Arc::new(Mutex::new(seeded));
    let failures = Arc::new(Mutex::new(Vec::<String>::new()));

    let lines = Arc::new(lines);
    let workers: Vec<_> = (0..shards)
        .map(|i| {
            let spec = ShardSpec {
                index: i,
                sock: sock_dir.join(format!("shard-{i}.sock")),
                serve_bin: serve_bin.clone(),
                fault: std::env::var(format!("SICKLE_SHARD_FAULT_{i}")).ok(),
            };
            if let Some(fault) = &spec.fault {
                log(format_args!("shard {i}: injecting faults {fault:?}"));
            }
            let queue = Arc::clone(&queue);
            let merged = Arc::clone(&merged);
            let lines = Arc::clone(&lines);
            let journal = journal.clone();
            let failures = Arc::clone(&failures);
            std::thread::spawn(move || {
                supervise_shard(
                    &spec,
                    &queue,
                    &merged,
                    &lines,
                    journal.as_deref(),
                    &failures,
                )
            })
        })
        .collect();
    let mut completed = 0usize;
    for w in workers {
        completed += w.join().unwrap_or(0);
    }

    let _ = std::fs::remove_dir_all(&sock_dir);

    let merged = Arc::try_unwrap(merged)
        .unwrap_or_else(|_| unreachable!("workers joined"))
        .into_inner()
        .expect("merged lock");
    let failures = Arc::try_unwrap(failures)
        .unwrap_or_else(|_| unreachable!("workers joined"))
        .into_inner()
        .expect("failures lock");
    let leftover = queue.leftover();
    log(format_args!(
        "{} task(s) completed across {} shard(s), {} leftover, {} failed",
        completed,
        shards,
        leftover,
        merged.failed.len()
    ));
    for (id, msg) in &merged.failed {
        log(format_args!("task {id} failed: {msg}"));
    }

    // Corpus mode: merge into the corpus dump + digest, byte-identical
    // to `sickle-corpus run` over the same directory.
    if let Some((dir, bundles)) = bundles {
        let error_response = Json::Obj(vec![("status".into(), Json::str("error"))]);
        let outcomes: Vec<_> = bundles
            .iter()
            .enumerate()
            .map(|(i, bundle)| {
                let response = merged
                    .outcomes
                    .get(&i)
                    .map(|o| &o.response)
                    .unwrap_or(&error_response);
                outcome_from_response(bundle, response, 0.0)
            })
            .collect();
        print!("{}", render_dump(&outcomes));
        let json_path =
            std::env::var("SICKLE_JSON").unwrap_or_else(|_| "BENCH_corpus.json".to_string());
        if !json_path.is_empty() {
            let payload = results_json(&dir.display().to_string(), &outcomes);
            match std::fs::write(&json_path, payload) {
                Ok(()) => log(format_args!("wrote {json_path}")),
                Err(e) => log(format_args!("warning: could not write {json_path}: {e}")),
            }
        }
        let bad = outcomes.iter().filter(|o| o.status != "ok").count();
        if bad > 0 || leftover > 0 || !failures.is_empty() {
            log(format_args!(
                "incomplete corpus run: {bad} not ok, {} shard failure(s)",
                failures.len()
            ));
            std::process::exit(1);
        }
        return;
    }

    // The merged dump, byte-identical to the single-process `solutions`
    // oracle: same banner, same per-task blocks in suite order.
    println!(
        "solution dump: max_visited={budget} seed={} (deterministic)",
        hc.seed
    );
    let mut results = SuiteResults::default();
    let mut missing = Vec::new();
    for b in all_benchmarks() {
        if !tasks.contains(&b.id) {
            continue;
        }
        let Some(outcome) = merged.outcomes.get(&b.id) else {
            missing.push(b.id);
            continue;
        };
        let r = &outcome.response;
        let stats = r.get("stats").cloned().unwrap_or(Json::Null);
        let count = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0) as usize;
        let secs = |k: &str| {
            Duration::from_secs_f64(stats.get(k).and_then(Json::as_f64).unwrap_or(0.0).max(0.0))
        };
        let solutions: Vec<String> = r
            .get("solutions")
            .and_then(Json::as_array)
            .map(|qs| {
                qs.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        println!(
            "## {:2} {} visited={} pruned={} solutions={}",
            b.id,
            b.name,
            count(&stats, "visited"),
            count(&stats, "pruned"),
            solutions.len()
        );
        for (i, q) in solutions.iter().enumerate() {
            println!("  {:2}. {q}", i + 1);
        }
        let rank = r
            .get("rank")
            .and_then(Json::as_f64)
            .map(|n| n as usize)
            .filter(|&n| n >= 1);
        results.records.push(RunRecord {
            id: b.id,
            name: b.name.to_string(),
            category: b.category,
            technique: Technique::Provenance,
            solved: r.get("solved").and_then(Json::as_bool).unwrap_or(false),
            elapsed: secs("wall_s"),
            time_analyze: secs("time_analyze_s"),
            time_eval: secs("time_eval_s"),
            time_materialize: secs("time_materialize_s"),
            time_prefilter: secs("time_prefilter_s"),
            time_match: secs("time_match_s"),
            time_expand: secs("time_expand_s"),
            time_join: secs("time_join_s"),
            join_rows: count(&stats, "join_rows"),
            visited: count(&stats, "visited"),
            pruned: count(&stats, "pruned"),
            cache_evictions: count(&stats, "cache_evictions"),
            cache_demotions: count(&stats, "cache_demotions"),
            cache_reevals: count(&stats, "cache_reevals"),
            cache_reeval_time: secs("cache_reeval_s"),
            mem_bytes: count(&stats, "mem_bytes"),
            reused_verdicts: count(&stats, "reused_verdicts"),
            invalidated_verdicts: count(&stats, "invalidated_verdicts"),
            rank,
        });
    }

    let json_hc = HarnessConfig {
        timeout: Duration::ZERO,
        max_visited: budget,
        ..hc
    };
    match write_bench_json(&results, &json_hc) {
        Ok(Some(path)) => log(format_args!("wrote {}", path.display())),
        Ok(None) => {}
        Err(e) => log(format_args!("warning: could not write bench JSON: {e}")),
    }

    if !missing.is_empty() || !merged.failed.is_empty() || leftover > 0 || !failures.is_empty() {
        log(format_args!(
            "incomplete run: {missing:?} missing, {} shard failure(s)",
            failures.len()
        ));
        std::process::exit(1);
    }
}

/// The `sickle-serve` binary that shipped next to this executable.
fn default_serve_bin() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("sickle-serve")))
        .unwrap_or_else(|| PathBuf::from("sickle-serve"))
}

// ---------------------------------------------------------------------------
// Shard supervisor
// ---------------------------------------------------------------------------

/// Restart budget of the supervisor: more than this many restarts within
/// [`RESTART_WINDOW`] declares the shard failed (structured run failure)
/// instead of flapping forever.
const MAX_RESTARTS: usize = 5;
/// Sliding window of the restart budget.
const RESTART_WINDOW: Duration = Duration::from_secs(60);
/// Exit code `sickle-serve` reserves for configuration errors (bad
/// flags, malformed `SICKLE_FAULT`, unusable listen spec). A supervisor
/// must not restart these — the configuration cannot heal by retrying.
const EXIT_CONFIG: i32 = 2;

fn spawn_serve(spec: &ShardSpec) -> std::io::Result<Child> {
    let mut cmd = Command::new(&spec.serve_bin);
    cmd.arg("--listen")
        .arg(format!("unix:{}", spec.sock.display()));
    // The parent's fault plan must not leak into every shard; each
    // shard gets exactly its own injected faults (if any).
    cmd.env_remove("SICKLE_FAULT");
    if let Some(fault) = &spec.fault {
        cmd.env("SICKLE_FAULT", fault.clone());
    }
    cmd.spawn()
}

/// How one spawned serve process came up.
enum Startup {
    /// The socket appeared (or the wait budget lapsed — `connect` makes
    /// the final call).
    Bound,
    /// The process exited before binding (startup crash or config error).
    Exited(std::process::ExitStatus),
}

/// Waits for a freshly spawned serve to bind its socket, polling the
/// child so a startup death (a config error exits within milliseconds)
/// is classified immediately instead of burning the connect budget.
fn await_startup(spec: &ShardSpec, child: &mut Child) -> Startup {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if spec.sock.exists() {
            return Startup::Bound;
        }
        if let Ok(Some(status)) = child.try_wait() {
            return Startup::Exited(status);
        }
        if Instant::now() >= deadline {
            return Startup::Bound;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Runs one shard under supervision: spawn the serve process, drive it,
/// and on death classify the exit — config errors (exit 2) are never
/// restarted; crashes are respawned with capped exponential backoff up
/// to [`MAX_RESTARTS`] per [`RESTART_WINDOW`], after which the shard is
/// declared failed. Returns the number of tasks completed here.
fn supervise_shard(
    spec: &ShardSpec,
    queue: &WorkQueue,
    merged: &Mutex<Merged>,
    lines: &HashMap<usize, String>,
    journal: Option<&Journal>,
    failures: &Mutex<Vec<String>>,
) -> usize {
    let index = spec.index;
    let mut done = 0usize;
    let mut restarts: VecDeque<Instant> = VecDeque::new();
    let mut backoff = Duration::from_millis(200);
    let fail = |msg: String| {
        log(format_args!("{msg}"));
        failures.lock().expect("failures lock").push(msg);
    };
    loop {
        let mut child = match spawn_serve(spec) {
            Ok(child) => child,
            Err(e) => {
                fail(format!(
                    "shard {index}: cannot spawn {}: {e}",
                    spec.serve_bin.display()
                ));
                return done;
            }
        };
        let crashed_at_startup = match await_startup(spec, &mut child) {
            Startup::Bound => {
                let (n, end) = drive_shard(index, &spec.sock, queue, merged, lines, journal);
                done += n;
                match end {
                    ShardEnd::Drained => {
                        let _ = child.kill();
                        let _ = child.wait();
                        return done;
                    }
                    ShardEnd::Dead => None,
                }
            }
            Startup::Exited(status) => Some(status),
        };
        // Classify the death: a self-exited child reports its code; a
        // wedged-but-unreachable one is killed and counts as a crash.
        let status = crashed_at_startup.or_else(|| match child.try_wait() {
            Ok(Some(status)) => Some(status),
            _ => {
                let _ = child.kill();
                let _ = child.wait();
                None
            }
        });
        if status.and_then(|s| s.code()) == Some(EXIT_CONFIG) {
            fail(format!(
                "shard {index}: serve exited with the config-error code ({EXIT_CONFIG}); \
                 not restarting — fix the configuration"
            ));
            return done;
        }
        let now = Instant::now();
        while restarts
            .front()
            .is_some_and(|t| now.duration_since(*t) > RESTART_WINDOW)
        {
            restarts.pop_front();
        }
        if restarts.len() >= MAX_RESTARTS {
            fail(format!(
                "shard {index}: restart budget exhausted ({MAX_RESTARTS} restarts in {}s); \
                 giving up on this shard",
                RESTART_WINDOW.as_secs()
            ));
            return done;
        }
        restarts.push_back(now);
        log(format_args!(
            "shard {index}: died (exit {:?}); restarting in {:?} (restart {} of {MAX_RESTARTS} \
             in window)",
            status.and_then(|s| s.code()),
            backoff,
            restarts.len(),
        ));
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_secs(5));
    }
}

/// Initial connect: the freshly spawned shard may take a while to bind
/// on a heavily loaded host, so the budget is generous (~23s).
const CONNECT_ATTEMPTS: usize = 16;
/// Reconnect after an error: the process was alive moments ago, so a
/// short budget (~3s) is enough to tell "transient" from "dead".
const RECONNECT_ATTEMPTS: usize = 6;

/// Connects to `sock` with exponential backoff (the shard may still be
/// binding, or be briefly unreachable). `None` after the retry budget —
/// the shard is considered dead.
fn connect(sock: &std::path::Path, attempts: usize) -> Option<BufReader<UnixStream>> {
    let mut delay = Duration::from_millis(50);
    for _ in 0..attempts {
        match UnixStream::connect(sock) {
            Ok(stream) => {
                // Generous read timeout: a genuinely wedged shard is the
                // server watchdog's job; a dead one reads EOF immediately.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(900)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                return Some(BufReader::new(stream));
            }
            Err(_) => std::thread::sleep(delay),
        }
        delay = (delay * 2).min(Duration::from_secs(2));
    }
    None
}

/// One request/response exchange. `Err` means the connection is unusable
/// (the caller reconnects or declares the shard dead).
fn exchange(conn: &mut BufReader<UnixStream>, id: usize, line: &str) -> Result<Json, String> {
    conn.get_mut()
        .write_all(line.as_bytes())
        .and_then(|()| conn.get_mut().write_all(b"\n"))
        .and_then(|()| conn.get_mut().flush())
        .map_err(|e| format!("write failed: {e}"))?;
    loop {
        let mut response = String::new();
        match conn.read_line(&mut response) {
            Ok(0) => return Err("connection closed by shard".to_string()),
            Ok(_) => {}
            Err(e) => return Err(format!("read failed: {e}")),
        }
        let json = match Json::parse(response.trim()) {
            Ok(json) => json,
            Err(e) => return Err(format!("unparsable response: {e}")),
        };
        // Skip stray streamed events; the final response for this request
        // carries a "status" and echoes the id.
        if json.get("status").is_none() {
            continue;
        }
        let echoed = json.get("id").and_then(Json::as_f64).map(|n| n as usize);
        if echoed == Some(id) {
            return Ok(json);
        }
    }
}

/// Bound on `resource_exhausted` retries per task: the server sheds
/// these *after pressure subsides*, so a bounded, backed-off retry is
/// right — but a budget so tight the task can never run must become a
/// terminal failure, not an infinite loop.
const EXHAUSTED_RETRY_LIMIT: u32 = 6;

/// Deterministic jittered backoff for `resource_exhausted` retries: an
/// exponential base plus a (task, attempt)-derived jitter so shards
/// never retry in lockstep. A pure function — no clock, no RNG — so
/// reruns behave identically.
fn exhausted_backoff(task: usize, attempt: u32) -> Duration {
    let base = Duration::from_millis(250).saturating_mul(1 << attempt.min(4));
    let jitter = (task as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(u64::from(attempt))
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        % 250;
    base + Duration::from_millis(jitter)
}

/// Why [`drive_shard`] returned.
enum ShardEnd {
    /// The work queue is fully drained; the shard is no longer needed.
    Drained,
    /// The shard stopped answering and could not be reconnected; the
    /// supervisor decides whether to respawn it.
    Dead,
}

/// Drives one shard until the queue is empty or the shard dies. Returns
/// the number of tasks this shard completed and why it stopped.
fn drive_shard(
    index: usize,
    sock: &std::path::Path,
    queue: &WorkQueue,
    merged: &Mutex<Merged>,
    lines: &HashMap<usize, String>,
    journal: Option<&Journal>,
) -> (usize, ShardEnd) {
    let mut conn = match connect(sock, CONNECT_ATTEMPTS) {
        Some(conn) => conn,
        None => {
            log(format_args!("shard {index}: never came up"));
            return (0, ShardEnd::Dead);
        }
    };
    let mut done = 0usize;
    'tasks: while let Some(id) = queue.claim() {
        if let Some(j) = journal {
            j.claimed(id);
        }
        let line = &lines[&id];
        let mut overload_delay = Duration::from_millis(100);
        let mut exhausted_retries = 0u32;
        loop {
            match exchange(&mut conn, id, line) {
                Ok(response) => {
                    let status = response.get("status").and_then(Json::as_str);
                    if status == Some("ok") {
                        if let Some(j) = journal {
                            // fsync'd before complete(): a SIGKILL'd
                            // driver never loses a finished task.
                            j.done(id, &response);
                        }
                        merged
                            .lock()
                            .expect("merged lock")
                            .outcomes
                            .insert(id, TaskOutcome { response });
                        queue.complete();
                        done += 1;
                        continue 'tasks;
                    }
                    let kind = response
                        .get("error")
                        .and_then(|e| e.get("kind"))
                        .and_then(Json::as_str)
                        .unwrap_or("unknown");
                    if kind == "overloaded" {
                        // Transient by construction: honor the server's
                        // retry hint when it sent one, otherwise fall
                        // back to exponential backoff.
                        let hinted = response
                            .get("error")
                            .and_then(|e| e.get("retry_after_ms"))
                            .and_then(Json::as_f64)
                            .map(|ms| Duration::from_millis(ms.max(0.0) as u64));
                        let delay = match hinted {
                            Some(d) => d.min(Duration::from_secs(5)),
                            None => {
                                let d = overload_delay;
                                overload_delay = (overload_delay * 2).min(Duration::from_secs(5));
                                d
                            }
                        };
                        std::thread::sleep(delay);
                        continue;
                    }
                    if kind == "resource_exhausted" && exhausted_retries < EXHAUSTED_RETRY_LIMIT {
                        // Retryable only after pressure subsides: never
                        // immediately, always with jittered delay, and
                        // only a bounded number of times.
                        exhausted_retries += 1;
                        let delay = exhausted_backoff(id, exhausted_retries);
                        log(format_args!(
                            "shard {index}: task {id} resource_exhausted; retry {} of \
                             {EXHAUSTED_RETRY_LIMIT} in {delay:?}",
                            exhausted_retries
                        ));
                        std::thread::sleep(delay);
                        continue;
                    }
                    // Structured non-transient error (invalid_request,
                    // internal, exhausted retry budget, …): terminal for
                    // this task, never retried.
                    let message = response
                        .get("error")
                        .and_then(|e| e.get("message"))
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string();
                    log(format_args!("shard {index}: task {id} error [{kind}]"));
                    let detail = format!("[{kind}] {message}");
                    if let Some(j) = journal {
                        j.failed(id, &detail);
                    }
                    merged
                        .lock()
                        .expect("merged lock")
                        .failed
                        .push((id, detail));
                    queue.complete();
                    continue 'tasks;
                }
                Err(e) => {
                    // Connection trouble: the task goes back on the queue
                    // for whoever can take it; then try to reconnect.
                    log(format_args!("shard {index}: {e}; requeueing task {id}"));
                    queue.requeue(id);
                    match connect(sock, RECONNECT_ATTEMPTS) {
                        Some(fresh) => {
                            conn = fresh;
                            continue 'tasks;
                        }
                        None => {
                            log(format_args!(
                                "shard {index}: dead; {done} task(s) completed here, \
                                 remaining work reassigned"
                            ));
                            return (done, ShardEnd::Dead);
                        }
                    }
                }
            }
        }
    }
    (done, ShardEnd::Drained)
}
