//! `sickle-shard` — fault-tolerant sharded suite driver.
//!
//! Partitions the benchmark suite across `--shards N` freshly spawned
//! `sickle-serve --listen unix:…` processes, drives them concurrently
//! over a shared work queue, and deterministically merges the responses
//! into the same artifacts the single-process `solutions` oracle
//! produces: the byte-identical solution dump on stdout and
//! `BENCH_synthesis.json` (`SICKLE_JSON` overrides the path).
//!
//! Robustness is the point, not raw speed:
//!
//! * connection failures are retried with exponential backoff;
//! * a shard that dies mid-run (crash, injected `exit@request` fault,
//!   kill) is detected, its in-flight task is pushed back onto the queue
//!   and the surviving shards absorb the remaining work;
//! * `overloaded` responses back off and retry; `invalid_request` and
//!   other structured errors are terminal for that task (never retried);
//! * the run fails loudly (exit 1) if any task is left uncovered.
//!
//! Per-shard fault injection for tests: `SICKLE_SHARD_FAULT_<i>` (0-based
//! shard index) becomes that shard's `SICKLE_FAULT`.
//!
//! ```text
//! SICKLE_MAX_VISITED=20000 cargo run -p sickle-bench --release --bin sickle-shard -- --shards 4
//! ```

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sickle_bench::corpus::{
    default_corpus_dir, load_corpus, outcome_from_response, render_dump, results_json, wire_line,
    CorpusFilters,
};
use sickle_bench::runner::HarnessConfig;
use sickle_bench::{write_bench_json, Json, RunRecord, SuiteResults, Technique};
use sickle_benchmarks::all_benchmarks;

const USAGE: &str = "\
sickle-shard: run the benchmark suite across N sickle-serve processes

USAGE:
    sickle-shard [--shards N] [--serve-bin PATH] [--corpus DIR]

Prints the deterministic solution dump (byte-identical to the
single-process `solutions` bin) on stdout and writes the merged
BENCH_synthesis.json. Honors SICKLE_MAX_VISITED, SICKLE_SEED,
SICKLE_ONLY and SICKLE_JSON like `solutions` does. The serve binary
defaults to the sickle-serve next to this executable (override with
--serve-bin or SICKLE_SERVE_BIN). SICKLE_SHARD_FAULT_<i> injects a
SICKLE_FAULT spec into shard i for robustness tests.

With --corpus DIR the work source is a frozen corpus instead of the
built-in suite: every bundle is shipped as a self-contained wire
request, and the merged output is the corpus dump + digest,
byte-identical to `sickle-corpus run --dir DIR` (BENCH_corpus.json is
written instead of BENCH_synthesis.json).
";

/// How a task ended on some shard.
struct TaskOutcome {
    response: Json,
}

struct Merged {
    outcomes: HashMap<usize, TaskOutcome>,
    /// Tasks that got a terminal (non-retryable) error response.
    failed: Vec<(usize, String)>,
}

struct Shard {
    index: usize,
    sock: PathBuf,
    child: Child,
}

/// Work queue with in-flight tracking. A driver whose queue looks empty
/// must NOT exit while another shard still has a task in flight: if that
/// shard dies, its task is requeued and somebody has to be around to
/// absorb it. Drivers block on the condvar until the queue is truly
/// drained (empty AND nothing in flight).
struct WorkQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    queue: VecDeque<usize>,
    inflight: usize,
}

impl WorkQueue {
    fn new(tasks: impl IntoIterator<Item = usize>) -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                queue: tasks.into_iter().collect(),
                inflight: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Claims the next task, blocking while other shards might still
    /// requeue theirs. `None` once the suite is truly drained.
    fn claim(&self) -> Option<usize> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(id) = state.queue.pop_front() {
                state.inflight += 1;
                return Some(id);
            }
            if state.inflight == 0 {
                return None;
            }
            // Timed wait so a lost wakeup can never wedge the driver.
            let (next, _) = self
                .cv
                .wait_timeout(state, Duration::from_millis(100))
                .expect("queue lock");
            state = next;
        }
    }

    /// The claimed task reached a terminal outcome (ok or structured
    /// non-retryable error).
    fn complete(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.inflight -= 1;
        self.cv.notify_all();
    }

    /// The claimed task's shard connection broke: put the task back for
    /// whoever can take it (including this shard after a reconnect).
    fn requeue(&self, id: usize) {
        let mut state = self.state.lock().expect("queue lock");
        state.queue.push_front(id);
        state.inflight -= 1;
        self.cv.notify_all();
    }

    fn leftover(&self) -> usize {
        let state = self.state.lock().expect("queue lock");
        state.queue.len() + state.inflight
    }
}

fn log(msg: std::fmt::Arguments<'_>) {
    eprintln!("sickle-shard: {msg}");
}

fn main() {
    let mut shards = 2usize;
    let mut serve_bin: Option<PathBuf> = None;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("sickle-shard: --shards needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--serve-bin" => {
                serve_bin = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("sickle-shard: --serve-bin needs a path");
                    std::process::exit(2);
                })));
            }
            "--corpus" => {
                corpus_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("sickle-shard: --corpus needs a directory (e.g. corpus/v1)");
                    std::process::exit(2);
                })));
            }
            other => {
                eprintln!("sickle-shard: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let hc = HarnessConfig::from_env();
    let budget = std::env::var("SICKLE_MAX_VISITED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    let serve_bin = serve_bin
        .or_else(|| std::env::var("SICKLE_SERVE_BIN").ok().map(PathBuf::from))
        .unwrap_or_else(default_serve_bin);

    // The corpus bundles (corpus mode only), indexed by wire id.
    let bundles = corpus_dir.as_ref().map(|dir| {
        let dir = if dir.as_os_str().is_empty() {
            default_corpus_dir()
        } else {
            dir.clone()
        };
        match load_corpus(&dir, &CorpusFilters::default()) {
            Ok(bundles) if bundles.is_empty() => {
                log(format_args!("corpus {} is empty", dir.display()));
                std::process::exit(1);
            }
            Ok(bundles) => (dir, bundles),
            Err(e) => {
                log(format_args!("cannot load corpus: {e}"));
                std::process::exit(1);
            }
        }
    });

    // Every task's request line is prebuilt so drive_shard is agnostic to
    // the work source (suite benchmarks vs corpus bundles).
    let lines: HashMap<usize, String> = match &bundles {
        Some((_, bundles)) => bundles
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let line = wire_line(b, &Json::num(i as f64)).unwrap_or_else(|e| {
                    log(format_args!("cannot encode bundle {}: {e}", b.id));
                    std::process::exit(1);
                });
                (i, line)
            })
            .collect(),
        None => all_benchmarks()
            .iter()
            .filter(|b| hc.only.is_empty() || hc.only.contains(&b.id))
            .map(|b| {
                let id = b.id;
                let seed = hc.seed;
                let line = format!(
                    "{{\"id\": {id}, \"benchmark\": {id}, \"seed\": {seed}, \
                     \"budget\": {{\"timeout_secs\": null, \"max_visited\": {budget}, \
                     \"max_solutions\": 10}}}}"
                );
                (id, line)
            })
            .collect(),
    };
    let mut tasks: Vec<usize> = lines.keys().copied().collect();
    tasks.sort_unstable();
    if tasks.is_empty() {
        log(format_args!(
            "no tasks selected (SICKLE_ONLY filtered everything)"
        ));
        std::process::exit(1);
    }

    let sock_dir = std::env::temp_dir().join(format!("sickle-shard-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&sock_dir) {
        log(format_args!("cannot create {}: {e}", sock_dir.display()));
        std::process::exit(1);
    }

    let mut children = Vec::new();
    for i in 0..shards {
        let sock = sock_dir.join(format!("shard-{i}.sock"));
        let mut cmd = Command::new(&serve_bin);
        cmd.arg("--listen").arg(format!("unix:{}", sock.display()));
        // The parent's fault plan must not leak into every shard; each
        // shard gets exactly its own injected faults (if any).
        cmd.env_remove("SICKLE_FAULT");
        if let Ok(spec) = std::env::var(format!("SICKLE_SHARD_FAULT_{i}")) {
            log(format_args!("shard {i}: injecting faults {spec:?}"));
            cmd.env("SICKLE_FAULT", spec);
        }
        match cmd.spawn() {
            Ok(child) => children.push(Shard {
                index: i,
                sock,
                child,
            }),
            Err(e) => {
                log(format_args!(
                    "cannot spawn {} for shard {i}: {e}",
                    serve_bin.display()
                ));
                for mut s in children {
                    let _ = s.child.kill();
                    let _ = s.child.wait();
                }
                std::process::exit(1);
            }
        }
    }

    let queue = Arc::new(WorkQueue::new(tasks.iter().copied()));
    let merged = Arc::new(Mutex::new(Merged {
        outcomes: HashMap::new(),
        failed: Vec::new(),
    }));

    let lines = Arc::new(lines);
    let workers: Vec<_> = children
        .iter()
        .map(|s| {
            let queue = Arc::clone(&queue);
            let merged = Arc::clone(&merged);
            let lines = Arc::clone(&lines);
            let sock = s.sock.clone();
            let index = s.index;
            std::thread::spawn(move || drive_shard(index, &sock, &queue, &merged, &lines))
        })
        .collect();
    let mut completed = 0usize;
    for w in workers {
        completed += w.join().unwrap_or(0);
    }

    for s in &mut children {
        let _ = s.child.kill();
        let _ = s.child.wait();
    }
    let _ = std::fs::remove_dir_all(&sock_dir);

    let merged = Arc::try_unwrap(merged)
        .unwrap_or_else(|_| unreachable!("workers joined"))
        .into_inner()
        .expect("merged lock");
    let leftover = queue.leftover();
    log(format_args!(
        "{} task(s) completed across {} shard(s), {} leftover, {} failed",
        completed,
        shards,
        leftover,
        merged.failed.len()
    ));
    for (id, msg) in &merged.failed {
        log(format_args!("task {id} failed: {msg}"));
    }

    // Corpus mode: merge into the corpus dump + digest, byte-identical
    // to `sickle-corpus run` over the same directory.
    if let Some((dir, bundles)) = bundles {
        let error_response = Json::Obj(vec![("status".into(), Json::str("error"))]);
        let outcomes: Vec<_> = bundles
            .iter()
            .enumerate()
            .map(|(i, bundle)| {
                let response = merged
                    .outcomes
                    .get(&i)
                    .map(|o| &o.response)
                    .unwrap_or(&error_response);
                outcome_from_response(bundle, response, 0.0)
            })
            .collect();
        print!("{}", render_dump(&outcomes));
        let json_path =
            std::env::var("SICKLE_JSON").unwrap_or_else(|_| "BENCH_corpus.json".to_string());
        if !json_path.is_empty() {
            let payload = results_json(&dir.display().to_string(), &outcomes);
            match std::fs::write(&json_path, payload) {
                Ok(()) => log(format_args!("wrote {json_path}")),
                Err(e) => log(format_args!("warning: could not write {json_path}: {e}")),
            }
        }
        let bad = outcomes.iter().filter(|o| o.status != "ok").count();
        if bad > 0 || leftover > 0 {
            log(format_args!("incomplete corpus run: {bad} not ok"));
            std::process::exit(1);
        }
        return;
    }

    // The merged dump, byte-identical to the single-process `solutions`
    // oracle: same banner, same per-task blocks in suite order.
    println!(
        "solution dump: max_visited={budget} seed={} (deterministic)",
        hc.seed
    );
    let mut results = SuiteResults::default();
    let mut missing = Vec::new();
    for b in all_benchmarks() {
        if !tasks.contains(&b.id) {
            continue;
        }
        let Some(outcome) = merged.outcomes.get(&b.id) else {
            missing.push(b.id);
            continue;
        };
        let r = &outcome.response;
        let stats = r.get("stats").cloned().unwrap_or(Json::Null);
        let count = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0) as usize;
        let secs = |k: &str| {
            Duration::from_secs_f64(stats.get(k).and_then(Json::as_f64).unwrap_or(0.0).max(0.0))
        };
        let solutions: Vec<String> = r
            .get("solutions")
            .and_then(Json::as_array)
            .map(|qs| {
                qs.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        println!(
            "## {:2} {} visited={} pruned={} solutions={}",
            b.id,
            b.name,
            count(&stats, "visited"),
            count(&stats, "pruned"),
            solutions.len()
        );
        for (i, q) in solutions.iter().enumerate() {
            println!("  {:2}. {q}", i + 1);
        }
        let rank = r
            .get("rank")
            .and_then(Json::as_f64)
            .map(|n| n as usize)
            .filter(|&n| n >= 1);
        results.records.push(RunRecord {
            id: b.id,
            name: b.name.to_string(),
            category: b.category,
            technique: Technique::Provenance,
            solved: r.get("solved").and_then(Json::as_bool).unwrap_or(false),
            elapsed: secs("wall_s"),
            time_analyze: secs("time_analyze_s"),
            time_eval: secs("time_eval_s"),
            time_materialize: secs("time_materialize_s"),
            time_prefilter: secs("time_prefilter_s"),
            time_match: secs("time_match_s"),
            time_expand: secs("time_expand_s"),
            time_join: secs("time_join_s"),
            join_rows: count(&stats, "join_rows"),
            visited: count(&stats, "visited"),
            pruned: count(&stats, "pruned"),
            cache_evictions: count(&stats, "cache_evictions"),
            cache_demotions: count(&stats, "cache_demotions"),
            cache_reevals: count(&stats, "cache_reevals"),
            cache_reeval_time: secs("cache_reeval_s"),
            rank,
        });
    }

    let json_hc = HarnessConfig {
        timeout: Duration::ZERO,
        max_visited: budget,
        ..hc
    };
    match write_bench_json(&results, &json_hc) {
        Ok(Some(path)) => log(format_args!("wrote {}", path.display())),
        Ok(None) => {}
        Err(e) => log(format_args!("warning: could not write bench JSON: {e}")),
    }

    if !missing.is_empty() || !merged.failed.is_empty() || leftover > 0 {
        log(format_args!("incomplete run: {missing:?} missing"));
        std::process::exit(1);
    }
}

/// The `sickle-serve` binary that shipped next to this executable.
fn default_serve_bin() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("sickle-serve")))
        .unwrap_or_else(|| PathBuf::from("sickle-serve"))
}

/// Initial connect: the freshly spawned shard may take a while to bind
/// on a heavily loaded host, so the budget is generous (~23s).
const CONNECT_ATTEMPTS: usize = 16;
/// Reconnect after an error: the process was alive moments ago, so a
/// short budget (~3s) is enough to tell "transient" from "dead".
const RECONNECT_ATTEMPTS: usize = 6;

/// Connects to `sock` with exponential backoff (the shard may still be
/// binding, or be briefly unreachable). `None` after the retry budget —
/// the shard is considered dead.
fn connect(sock: &std::path::Path, attempts: usize) -> Option<BufReader<UnixStream>> {
    let mut delay = Duration::from_millis(50);
    for _ in 0..attempts {
        match UnixStream::connect(sock) {
            Ok(stream) => {
                // Generous read timeout: a genuinely wedged shard is the
                // server watchdog's job; a dead one reads EOF immediately.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(900)));
                let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
                return Some(BufReader::new(stream));
            }
            Err(_) => std::thread::sleep(delay),
        }
        delay = (delay * 2).min(Duration::from_secs(2));
    }
    None
}

/// One request/response exchange. `Err` means the connection is unusable
/// (the caller reconnects or declares the shard dead).
fn exchange(conn: &mut BufReader<UnixStream>, id: usize, line: &str) -> Result<Json, String> {
    conn.get_mut()
        .write_all(line.as_bytes())
        .and_then(|()| conn.get_mut().write_all(b"\n"))
        .and_then(|()| conn.get_mut().flush())
        .map_err(|e| format!("write failed: {e}"))?;
    loop {
        let mut response = String::new();
        match conn.read_line(&mut response) {
            Ok(0) => return Err("connection closed by shard".to_string()),
            Ok(_) => {}
            Err(e) => return Err(format!("read failed: {e}")),
        }
        let json = match Json::parse(response.trim()) {
            Ok(json) => json,
            Err(e) => return Err(format!("unparsable response: {e}")),
        };
        // Skip stray streamed events; the final response for this request
        // carries a "status" and echoes the id.
        if json.get("status").is_none() {
            continue;
        }
        let echoed = json.get("id").and_then(Json::as_f64).map(|n| n as usize);
        if echoed == Some(id) {
            return Ok(json);
        }
    }
}

/// Drives one shard until the queue is empty or the shard dies. Returns
/// the number of tasks this shard completed.
fn drive_shard(
    index: usize,
    sock: &std::path::Path,
    queue: &WorkQueue,
    merged: &Mutex<Merged>,
    lines: &HashMap<usize, String>,
) -> usize {
    let mut conn = match connect(sock, CONNECT_ATTEMPTS) {
        Some(conn) => conn,
        None => {
            log(format_args!("shard {index}: never came up; abandoning"));
            return 0;
        }
    };
    let mut done = 0usize;
    'tasks: while let Some(id) = queue.claim() {
        let line = &lines[&id];
        let mut overload_delay = Duration::from_millis(100);
        loop {
            match exchange(&mut conn, id, line) {
                Ok(response) => {
                    let status = response.get("status").and_then(Json::as_str);
                    if status == Some("ok") {
                        merged
                            .lock()
                            .expect("merged lock")
                            .outcomes
                            .insert(id, TaskOutcome { response });
                        queue.complete();
                        done += 1;
                        continue 'tasks;
                    }
                    let kind = response
                        .get("error")
                        .and_then(|e| e.get("kind"))
                        .and_then(Json::as_str)
                        .unwrap_or("unknown");
                    if kind == "overloaded" {
                        // Transient by construction: back off and retry.
                        std::thread::sleep(overload_delay);
                        overload_delay = (overload_delay * 2).min(Duration::from_secs(5));
                        continue;
                    }
                    // Structured non-transient error (invalid_request,
                    // internal, …): terminal for this task, never retried.
                    let message = response
                        .get("error")
                        .and_then(|e| e.get("message"))
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string();
                    log(format_args!("shard {index}: task {id} error [{kind}]"));
                    merged
                        .lock()
                        .expect("merged lock")
                        .failed
                        .push((id, format!("[{kind}] {message}")));
                    queue.complete();
                    continue 'tasks;
                }
                Err(e) => {
                    // Connection trouble: the task goes back on the queue
                    // for whoever can take it; then try to reconnect.
                    log(format_args!("shard {index}: {e}; requeueing task {id}"));
                    queue.requeue(id);
                    match connect(sock, RECONNECT_ATTEMPTS) {
                        Some(fresh) => {
                            conn = fresh;
                            continue 'tasks;
                        }
                        None => {
                            log(format_args!(
                                "shard {index}: dead; {done} task(s) completed here, \
                                 remaining work reassigned"
                            ));
                            return done;
                        }
                    }
                }
            }
        }
    }
    done
}
