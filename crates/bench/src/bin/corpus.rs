//! `sickle-corpus` — generate, admit, freeze and run task corpora.
//!
//! ```text
//! sickle-corpus generate --seed 42 --count 64 [--out corpus/v1]
//!                        [--max-visited N] [--max-solutions N]
//! sickle-corpus run [--dir corpus/v1] [--categories a,b] [--task-ids i,j]
//!                   [--formats csv,json] [--seed-range LO..HI] [--json PATH]
//! ```
//!
//! `generate` derives candidate tasks from the seed-addressed generator
//! (candidate seeds `seed..seed+count`), runs the admission gates on a
//! warm session, and freezes the admitted bundles under `--out`.
//! Rejections are tallied by reason on stderr. Exits 1 if nothing was
//! admitted.
//!
//! `run` loads a frozen corpus (verifying every bundle's content hash),
//! applies the filters, executes the slice through the wire path on one
//! warm in-process session, and prints the deterministic dump + digest
//! on stdout — two invocations over the same corpus are byte-identical,
//! so CI can `cmp` them. Timings go to stderr; `BENCH_corpus.json` is
//! written to `--json`, else `SICKLE_JSON`, else `BENCH_corpus.json`
//! (empty string disables). Exits 1 on any mismatch or error.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::time::Instant;

use sickle_bench::corpus::{
    admit, default_corpus_dir, freeze_corpus, load_corpus, render_dump, results_json, run_corpus,
    CorpusBudget, CorpusFilters, REJECT_REASONS,
};
use sickle_benchmarks::generate_candidate;
use sickle_core::Session;

const USAGE: &str = "\
sickle-corpus: generated task corpora with admission gates

USAGE:

    sickle-corpus generate --seed N --count N [--out DIR]
                           [--max-visited N] [--max-solutions N]
        Generate candidates (seeds N..N+count), admit them on a warm
        session, freeze admitted bundles under DIR (default corpus/v1).

    sickle-corpus run [--dir DIR] [--categories a,b] [--task-ids i,j]
                      [--formats csv,json] [--seed-range LO..HI]
                      [--json PATH]
        Run a frozen corpus slice through the wire path; prints the
        deterministic dump + digest on stdout, writes BENCH_corpus.json
        (--json overrides SICKLE_JSON; empty disables).
";

fn log(msg: std::fmt::Arguments<'_>) {
    eprintln!("sickle-corpus: {msg}");
}

fn need_value(args: &mut std::env::Args, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        log(format_args!("{flag} needs a value"));
        std::process::exit(2);
    })
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        log(format_args!("{flag}: cannot parse {v:?}"));
        std::process::exit(2);
    })
}

fn comma_set(v: &str) -> BTreeSet<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn main() {
    let mut args = std::env::args();
    args.next();
    match args.next().as_deref() {
        Some("generate") => generate_cmd(args),
        Some("run") => run_cmd(args),
        Some("-h") | Some("--help") => print!("{USAGE}"),
        other => {
            log(format_args!(
                "expected a subcommand (generate | run), got {other:?}"
            ));
            std::process::exit(2);
        }
    }
}

fn generate_cmd(mut args: std::env::Args) {
    let mut seed = 42u64;
    let mut count = 64usize;
    let mut out = default_corpus_dir();
    let mut budget = CorpusBudget::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => seed = parse_num("--seed", &need_value(&mut args, "--seed")),
            "--count" => count = parse_num("--count", &need_value(&mut args, "--count")),
            "--out" => out = PathBuf::from(need_value(&mut args, "--out")),
            "--max-visited" => {
                budget.max_visited =
                    parse_num("--max-visited", &need_value(&mut args, "--max-visited"));
            }
            "--max-solutions" => {
                budget.max_solutions =
                    parse_num("--max-solutions", &need_value(&mut args, "--max-solutions"));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            other => {
                log(format_args!("unknown argument {other:?} (try --help)"));
                std::process::exit(2);
            }
        }
    }

    let started = Instant::now();
    let session = Session::new();
    let mut admitted = Vec::new();
    let mut tally: BTreeMap<&'static str, usize> = BTreeMap::new();
    for offset in 0..count {
        let task_seed = seed + offset as u64;
        let cand = generate_candidate(task_seed);
        match admit(&cand, &budget, &session) {
            Ok(bundle) => {
                log(format_args!(
                    "admit {} ({} solution(s), visited {})",
                    bundle.id,
                    bundle.expected.len(),
                    bundle.visited
                ));
                admitted.push(bundle);
            }
            Err(r) => {
                log(format_args!(
                    "reject seed {task_seed} ({}) [{}]: {}",
                    cand.category.label(),
                    r.reason,
                    r.detail
                ));
                *tally.entry(r.reason).or_default() += 1;
            }
        }
    }

    log(format_args!(
        "admitted {}/{count} in {:.1}s",
        admitted.len(),
        started.elapsed().as_secs_f64()
    ));
    for reason in REJECT_REASONS {
        if let Some(n) = tally.get(reason) {
            log(format_args!("  rejected {reason}: {n}"));
        }
    }
    if admitted.is_empty() {
        log(format_args!("nothing admitted; not freezing"));
        std::process::exit(1);
    }
    if let Err(e) = freeze_corpus(&out, seed, count, &budget, &admitted, &tally) {
        log(format_args!("freeze failed: {e}"));
        std::process::exit(1);
    }
    log(format_args!(
        "froze {} task(s) under {}",
        admitted.len(),
        out.display()
    ));
}

fn run_cmd(mut args: std::env::Args) {
    let mut dir = default_corpus_dir();
    let mut filters = CorpusFilters::default();
    let mut json_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => dir = PathBuf::from(need_value(&mut args, "--dir")),
            "--categories" => {
                filters.categories = Some(comma_set(&need_value(&mut args, "--categories")));
            }
            "--task-ids" => {
                filters.task_ids = Some(comma_set(&need_value(&mut args, "--task-ids")));
            }
            "--formats" => {
                filters.formats = Some(comma_set(&need_value(&mut args, "--formats")));
            }
            "--seed-range" => {
                let v = need_value(&mut args, "--seed-range");
                filters.seed_range =
                    Some(CorpusFilters::parse_seed_range(&v).unwrap_or_else(|| {
                        log(format_args!(
                            "--seed-range wants LO..HI (inclusive), got {v:?}"
                        ));
                        std::process::exit(2);
                    }));
            }
            "--json" => json_path = Some(need_value(&mut args, "--json")),
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            other => {
                log(format_args!("unknown argument {other:?} (try --help)"));
                std::process::exit(2);
            }
        }
    }

    let tasks = match load_corpus(&dir, &filters) {
        Ok(tasks) => tasks,
        Err(e) => {
            log(format_args!("cannot load corpus: {e}"));
            std::process::exit(1);
        }
    };
    if tasks.is_empty() {
        log(format_args!(
            "no tasks selected from {} (filters too narrow?)",
            dir.display()
        ));
        std::process::exit(1);
    }

    let started = Instant::now();
    let outcomes = run_corpus(&tasks);
    print!("{}", render_dump(&outcomes));
    let ok = outcomes.iter().filter(|o| o.status == "ok").count();
    log(format_args!(
        "{ok}/{} ok in {:.1}s",
        outcomes.len(),
        started.elapsed().as_secs_f64()
    ));

    let path = json_path
        .or_else(|| std::env::var("SICKLE_JSON").ok())
        .unwrap_or_else(|| "BENCH_corpus.json".to_string());
    if !path.is_empty() {
        let payload = results_json(&dir.display().to_string(), &outcomes);
        match std::fs::write(&path, payload) {
            Ok(()) => log(format_args!("wrote {path}")),
            Err(e) => log(format_args!("warning: could not write {path}: {e}")),
        }
    }
    if ok != outcomes.len() {
        std::process::exit(1);
    }
}
