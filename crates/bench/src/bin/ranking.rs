//! E6: §5.2 ranking of the correct query among Sickle's solutions.

use sickle_bench::runner::{render_ranking, run_suite, HarnessConfig, Technique};

fn main() {
    let hc = HarnessConfig::from_env();
    eprintln!("{}: {}", env!("CARGO_BIN_NAME"), hc.banner());
    let res = run_suite(&[Technique::Provenance], &hc);
    print!("{}", render_ranking(&res));
}
