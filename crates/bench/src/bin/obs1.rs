//! E5: Observation #1 headline table.

use sickle_bench::runner::{render_obs1, run_suite, HarnessConfig, Technique};

fn main() {
    let hc = HarnessConfig::from_env();
    eprintln!("{}: {}", env!("CARGO_BIN_NAME"), hc.banner());
    let res = run_suite(&Technique::ALL, &hc);
    print!("{}", render_obs1(&res));
}
