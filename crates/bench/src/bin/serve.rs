//! `sickle-serve` — the JSON-lines synthesis service.
//!
//! Two transports, one request envelope (admission control, watchdog
//! deadlines, panic isolation, bounded request lines, fault hooks — see
//! [`sickle_bench::server`]):
//!
//! * **stdio** (default): one request per stdin line, one response per
//!   stdout line; stderr carries the banner and per-request timing.
//! * **socket** (`--listen tcp:HOST:PORT` or `--listen unix:PATH`): a
//!   concurrent server, one connection per thread, warm
//!   [`sickle_core::Session`]s shared across clients through a bounded
//!   LRU pool. SIGTERM/SIGINT drain gracefully: stop accepting, cancel
//!   in-flight searches, flush responses, exit 0.
//!
//! ```text
//! echo '{"id": 1, "benchmark": 44, "budget": {"max_visited": 20000, "timeout_secs": null}}' \
//!   | cargo run -p sickle-bench --release --bin sickle-serve
//!
//! cargo run -p sickle-bench --release --bin sickle-serve -- \
//!   --listen unix:/tmp/sickle.sock --max-inflight 4 --watchdog-secs 120
//! ```
//!
//! The wire schema and the operational envelope are documented in
//! `crates/bench/README.md` ("Server operations").

use std::time::Duration;

use sickle_bench::server::{install_signal_handlers, serve_stdio, Faults, Server, ServerConfig};

const USAGE: &str = "\
sickle-serve: JSON-lines synthesis service

USAGE:
    sickle-serve [OPTIONS]

One JSON request object per input line; blank lines and lines starting
with '#' are skipped. Without --listen, requests are read from stdin and
answered on stdout. See crates/bench/README.md for the schema and the
operational envelope.

OPTIONS:
    --listen SPEC         serve a socket instead of stdio:
                            tcp:HOST:PORT (tcp:127.0.0.1:0 picks a port,
                            printed in the 'listening on' banner), or
                            unix:PATH
    --max-inflight N      concurrent searches (default: CPU count)
    --queue N             requests allowed to wait beyond the in-flight
                          limit before shedding with an 'overloaded'
                          error (default: 2x max-inflight)
    --watchdog-secs S     hard per-request deadline, enforced server-side
                          via cancellation (default: 600)
    --grace-ms MS         how long a canceled search may linger before
                          its worker is detached (default: 2000)
    --max-line-bytes N    request-line byte bound; oversized lines get a
                          structured invalid_request error (default: 8388608)
    --max-bytes N         approximate memory budget in bytes: byte-bounds
                          the warm session pool and arms the pressure
                          ladder — new searches degrade their cache
                          policy at 80% (soft watermark), searches are
                          killed with a structured resource_exhausted
                          error at 95% (hard watermark) (default: off)
    --pool-sessions N     warm sessions kept, one per demo family
                          (default: 8)
    --pool-sets N         global interned-set bound across all warm
                          sessions; LRU sessions are evicted beyond it
                          (default: 1000000)
    -h, --help            this text

EXIT CODES:
    0  clean shutdown (drain on SIGTERM/SIGINT or stdin EOF)
    1  runtime failure (bind race, listener I/O) — a supervisor may
       restart
    2  configuration error (bad flags, malformed SICKLE_FAULT,
       unparseable --listen spec, un-unlinkable stale socket) — a
       supervisor must NOT restart

ENVIRONMENT:
    SICKLE_MAX_INFLIGHT, SICKLE_QUEUE, SICKLE_WATCHDOG_SECS,
    SICKLE_WATCHDOG_GRACE_MS, SICKLE_MAX_LINE_BYTES, SICKLE_MAX_BYTES,
    SICKLE_POOL_SESSIONS, SICKLE_POOL_SETS
                          defaults for the flags above (flags win)
    SICKLE_FAULT          fault injection for robustness tests:
                          kind@site[:nth[:param]],... with kinds
                          panic|stall|disconnect|exit|oom|slowwrite and
                          sites accept|request|analyze|response
";

fn parse_args(config: &mut ServerConfig) -> Result<Option<String>, String> {
    let mut listen = None;
    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            "--listen" => listen = Some(value("--listen", &mut args)?),
            "--max-inflight" => {
                let v = value("--max-inflight", &mut args)?;
                config.max_inflight = parse_num(&arg, &v)?.max(1);
            }
            "--queue" => {
                let v = value("--queue", &mut args)?;
                config.queue = parse_num(&arg, &v)?;
            }
            "--watchdog-secs" => {
                let v = value("--watchdog-secs", &mut args)?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("--watchdog-secs: bad value {v:?}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("--watchdog-secs: bad value {v:?}"));
                }
                config.watchdog = Duration::from_secs_f64(secs);
            }
            "--grace-ms" => {
                let v = value("--grace-ms", &mut args)?;
                config.grace = Duration::from_millis(parse_num(&arg, &v)? as u64);
            }
            "--max-line-bytes" => {
                let v = value("--max-line-bytes", &mut args)?;
                config.max_line_bytes = parse_num(&arg, &v)?.max(64);
            }
            "--max-bytes" => {
                let v = value("--max-bytes", &mut args)?;
                *config = config.clone().with_max_bytes(parse_num(&arg, &v)?);
            }
            "--pool-sessions" => {
                let v = value("--pool-sessions", &mut args)?;
                config.pool = config.pool.with_max_sessions(parse_num(&arg, &v)?);
            }
            "--pool-sets" => {
                let v = value("--pool-sets", &mut args)?;
                config.pool = config.pool.with_max_total_sets(parse_num(&arg, &v)?);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(listen)
}

fn parse_num(flag: &str, v: &str) -> Result<usize, String> {
    v.parse().map_err(|_| format!("{flag}: bad value {v:?}"))
}

/// Exit code for configuration errors a supervisor must not retry (bad
/// flags, malformed fault spec, unparseable listen spec, un-unlinkable
/// stale socket). Runtime failures exit 1 and may be restarted.
const EXIT_CONFIG: i32 = 2;

fn config_error(msg: impl std::fmt::Display) -> ! {
    eprintln!("sickle-serve: config error: {msg}");
    std::process::exit(EXIT_CONFIG);
}

fn main() {
    let mut config = ServerConfig::from_env();
    let listen = match parse_args(&mut config) {
        Ok(listen) => listen,
        Err(e) => config_error(e),
    };
    let faults = match Faults::from_env() {
        Ok(faults) => faults,
        Err(e) => config_error(e),
    };
    match listen {
        Some(spec) => {
            install_signal_handlers();
            let server = match Server::bind(&spec, config, faults) {
                Ok(server) => server,
                Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {
                    config_error(format_args!("cannot listen on {spec}: {e}"))
                }
                Err(e) => {
                    eprintln!("sickle-serve: cannot listen on {spec}: {e}");
                    std::process::exit(1);
                }
            };
            if let Err(e) = server.run() {
                eprintln!("sickle-serve: server failed: {e}");
                std::process::exit(1);
            }
        }
        None => {
            serve_stdio(config, faults);
        }
    }
}
