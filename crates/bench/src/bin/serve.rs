//! `sickle-serve` — JSON-lines batch synthesis server.
//!
//! Reads one request per line from stdin, writes one response per line to
//! stdout (stderr carries a start-up banner and per-request timing). All
//! requests share one warm [`Session`], so interned reference sets and
//! cached Def. 3 verdicts carry across requests. A malformed or invalid
//! line produces a structured error response and never kills the server.
//! Requests with `"progress": true` additionally stream
//! `{"event":"solution"|"progress",…}` lines — progress events carry the
//! acceptance-stage time split — before the final response line.
//!
//! ```text
//! echo '{"id": 1, "benchmark": 44, "budget": {"max_visited": 20000, "timeout_secs": null}}' \
//!   | cargo run -p sickle-bench --release --bin sickle-serve
//! ```
//!
//! The wire schema is documented in `crates/bench/README.md`.

use std::io::{BufRead, Write};
use std::time::Instant;

use sickle_bench::wire::handle_line_with;
use sickle_core::Session;

const USAGE: &str = "\
sickle-serve: JSON-lines batch synthesis server (stdin -> stdout)

One JSON request object per input line; blank lines and lines starting
with '#' are skipped. See crates/bench/README.md for the schema.
";

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let session = Session::new();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    eprintln!("sickle-serve: ready (one JSON request per line; Ctrl-D to exit)");
    let mut served = 0usize;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("sickle-serve: stdin error: {e}");
                break;
            }
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let t0 = Instant::now();
        // Streamed events (progress requests) go out as they happen; a
        // hung-up receiver is detected on the final response write below.
        let mut event_sink = |event: sickle_bench::Json| {
            let _ = writeln!(out, "{}", event.render()).and_then(|()| out.flush());
        };
        let response = handle_line_with(&session, trimmed, &mut event_sink);
        served += 1;
        if writeln!(out, "{}", response.render())
            .and_then(|()| out.flush())
            .is_err()
        {
            // Receiver hung up; nothing left to serve.
            break;
        }
        eprintln!(
            "sickle-serve: request {served} answered in {:.3}s (pool={} sets)",
            t0.elapsed().as_secs_f64(),
            session.pool().size()
        );
    }
}
