//! E3/E4: Fig. 13 — explored-query distributions, easy and hard suites.

use sickle_bench::runner::{render_fig13, run_suite, HarnessConfig, Technique};

fn main() {
    let hc = HarnessConfig::from_env();
    eprintln!("{}: {}", env!("CARGO_BIN_NAME"), hc.banner());
    let res = run_suite(&Technique::ALL, &hc);
    print!("{}", render_fig13(&res));
}
