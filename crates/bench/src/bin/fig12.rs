//! E1/E2: Fig. 12 — solve-rate vs time limit, easy and hard suites.

use sickle_bench::runner::{render_fig12, run_suite, HarnessConfig, Technique};

fn main() {
    let hc = HarnessConfig::from_env();
    eprintln!("{}: {}", env!("CARGO_BIN_NAME"), hc.banner());
    let res = run_suite(&Technique::ALL, &hc);
    print!("{}", render_fig12(&res));
}
