//! Runs the complete evaluation: one suite pass over all techniques, then
//! every table and figure of §5 (E1–E9 in DESIGN.md).

use sickle_bench::effort::render_userstudy;
use sickle_bench::runner::{
    render_fig12, render_fig13, render_obs1, render_ranking, run_suite, HarnessConfig, Technique,
};
use sickle_benchmarks::all_benchmarks;

fn main() {
    let hc = HarnessConfig::from_env();
    eprintln!(
        "running full suite: timeout={}s max_visited={} seed={}",
        hc.timeout.as_secs(),
        hc.max_visited,
        hc.seed
    );

    // Cheap static experiments first.
    let suite = all_benchmarks();
    let joins = suite.iter().filter(|b| b.features().join).count();
    let parts = suite.iter().filter(|b| b.features().partition).count();
    let groups = suite.iter().filter(|b| b.features().group).count();
    println!(
        "\nE9 census: 80 tasks, join={joins} partition={parts} group={groups} (paper: 24/51/32)"
    );

    let mut demo_cells = 0usize;
    let mut full_cells = 0usize;
    for b in &suite {
        if let Ok((_, gen)) = b.task(hc.seed) {
            demo_cells += gen.demo.n_cells();
            full_cells += gen.full_example_cells;
        }
    }
    println!(
        "E7 spec size: avg demo cells={:.1} (paper 9), avg full-example cells={:.1} (paper 50)",
        demo_cells as f64 / suite.len() as f64,
        full_cells as f64 / suite.len() as f64
    );
    print!("{}", render_userstudy(&suite));

    // The expensive pass: every benchmark × technique.
    let res = run_suite(&Technique::ALL, &hc);
    print!("{}", render_fig12(&res));
    print!("{}", render_fig13(&res));
    print!("{}", render_obs1(&res));
    print!("{}", render_ranking(&res));
}
