//! Deterministic full-suite solution dump: every benchmark runs through
//! one warm [`Session`] (sequential provenance-guided search) under a
//! *visited-query* budget (no wall-clock cutoff, so the output is
//! bit-for-bit reproducible) and prints the consistent queries found, in
//! rank order.
//!
//! This is the regression oracle for engine/analyzer refactors: any change
//! to the search must leave this output byte-identical. Per-task timing
//! goes to stderr (stdout stays reproducible), and the machine-readable
//! record set is written to `BENCH_synthesis.json` (`SICKLE_JSON`
//! overrides the path, the empty string disables it).
//!
//! ```text
//! SICKLE_MAX_VISITED=20000 cargo run -p sickle-bench --release --bin solutions
//! ```

use sickle_bench::runner::HarnessConfig;
use sickle_bench::{write_bench_json, RunRecord, SuiteResults, Technique};
use sickle_benchmarks::all_benchmarks;
use sickle_core::{Budget, Session, SynthRequest};

fn main() {
    let hc = HarnessConfig::from_env();
    let budget = std::env::var("SICKLE_MAX_VISITED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000);
    println!(
        "solution dump: max_visited={budget} seed={} (deterministic)",
        hc.seed
    );
    let mut results = SuiteResults::default();
    // One warm session across the whole suite: the set pool is shared by
    // every task (analysis caches are per-demonstration inside the
    // session). The dump stays byte-identical to a cold per-task run —
    // interned ids are opaque and cached verdicts equal what a cold
    // search recomputes.
    let session = Session::new();
    for b in all_benchmarks() {
        if !hc.only.is_empty() && !hc.only.contains(&b.id) {
            continue;
        }
        // Setup or solve failures surface as structured errors on stderr
        // and skip the task — the dump itself must never panic on a
        // malformed benchmark definition.
        let task = match b.task(hc.seed) {
            Ok((task, _)) => task,
            Err(e) => {
                eprintln!("{:2} ERROR [internal]: demo generation failed: {e}", b.id);
                continue;
            }
        };
        let request = SynthRequest::from_task(task)
            .with_search(b.config())
            .with_budget(
                Budget::unbounded()
                    .with_max_visited(Some(budget))
                    .with_max_solutions(10),
            )
            .with_cache_policy(hc.cache);
        let res = match session.solve(&request) {
            Ok(res) => res,
            Err(e) => {
                eprintln!("{:2} ERROR [{}]: {e}", b.id, e.kind());
                continue;
            }
        };
        println!(
            "## {:2} {} visited={} pruned={} solutions={}",
            b.id,
            b.name,
            res.stats.visited,
            res.stats.pruned,
            res.solutions.len()
        );
        for (i, q) in res.solutions.iter().enumerate() {
            println!("  {:2}. {q}", i + 1);
        }
        // Timing goes to stderr so stdout stays byte-for-byte reproducible.
        // Pool size and hit/miss counters are cumulative session totals.
        let cs = session.analysis_stats();
        eprintln!(
            "{:2} wall={:.3}s analyze={:.3}s concrete={:.3}s (mat={:.3}s pre={:.3}s match={:.3}s) \
             expand={:.3}s join={:.3}s join_rows={} pool={} hits={} misses={} \
             cache(ev={} dem={} reeval={} reeval_ms={:.1})",
            b.id,
            res.stats.elapsed.as_secs_f64(),
            res.stats.time_analyze.as_secs_f64(),
            res.stats.time_concrete.as_secs_f64(),
            res.stats.time_materialize.as_secs_f64(),
            res.stats.time_prefilter.as_secs_f64(),
            res.stats.time_match.as_secs_f64(),
            res.stats.time_expand.as_secs_f64(),
            res.stats.time_join.as_secs_f64(),
            res.stats.join_rows,
            session.pool().size(),
            cs.hits,
            cs.misses,
            res.stats.cache_evictions,
            res.stats.cache_demotions,
            res.stats.cache_reevals,
            res.stats.cache_reeval_time.as_secs_f64() * 1e3
        );
        let rank = res
            .solutions
            .iter()
            .position(|q| b.is_correct(q))
            .map(|i| i + 1);
        results.records.push(RunRecord {
            id: b.id,
            name: b.name.to_string(),
            category: b.category,
            technique: Technique::Provenance,
            solved: rank.is_some(),
            elapsed: res.stats.elapsed,
            time_analyze: res.stats.time_analyze,
            time_eval: res.stats.time_concrete,
            time_materialize: res.stats.time_materialize,
            time_prefilter: res.stats.time_prefilter,
            time_match: res.stats.time_match,
            time_expand: res.stats.time_expand,
            time_join: res.stats.time_join,
            join_rows: res.stats.join_rows,
            visited: res.stats.visited,
            pruned: res.stats.pruned,
            cache_evictions: res.stats.cache_evictions,
            cache_demotions: res.stats.cache_demotions,
            cache_reevals: res.stats.cache_reevals,
            cache_reeval_time: res.stats.cache_reeval_time,
            mem_bytes: res.stats.mem_bytes,
            reused_verdicts: res.stats.reused_verdicts,
            invalidated_verdicts: res.stats.invalidated_verdicts,
            rank,
        });
    }
    // Report the configuration this bin actually ran with: its own
    // visited budget and no wall-clock cutoff (recorded as 0).
    let json_hc = HarnessConfig {
        timeout: std::time::Duration::ZERO,
        max_visited: budget,
        ..hc
    };
    match write_bench_json(&results, &json_hc) {
        Ok(Some(path)) => eprintln!("wrote {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write bench JSON: {e}"),
    }
}
