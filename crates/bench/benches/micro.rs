//! Micro-benchmarks of the engine refactor: the new columnar pipeline vs a
//! faithful replica of the old row-major interpreters.
//!
//! The offline build environment has no `criterion`, so this is a plain
//! `harness = false` binary with a best-of-N timing loop. Run with:
//!
//! ```text
//! cargo bench -p sickle-bench --bench micro
//! ```
//!
//! The `legacy` module below replicates, line for line where it matters,
//! the pre-refactor implementations: row-major `Vec<Vec<_>>` grids, the
//! O(n²) linear-scan `extractGroups`, and the provenance interpreter that
//! re-evaluates cell expressions (`Expr::eval`) for every grouping and
//! filtering decision. The new path is the shared columnar engine.

use std::time::{Duration, Instant};

use sickle_core::{
    abstract_evaluate, evaluate, prov_evaluate, EvalCache, PQuery, ProvTable, Query,
};
use sickle_provenance::{CellRef, Expr, FuncName, RefSet, RefUniverse};
use sickle_table::{AggFunc, AnalyticFunc, ArithExpr, ArithOp, Grid, Table, Value};

/// A faithful replica of the pre-refactor row-major evaluation stack,
/// kept solely as the benchmark baseline.
mod legacy {
    use super::*;

    /// The old `extractGroups`: linear scan over all previously seen keys,
    /// deep `Vec<Value>` equality per comparison.
    pub fn extract_groups(table: &Table, cols: &[usize]) -> Vec<Vec<usize>> {
        let mut order: Vec<Vec<Value>> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for i in 0..table.n_rows() {
            let key: Vec<Value> = cols
                .iter()
                .map(|&c| table.get(i, c).unwrap().clone())
                .collect();
            match order.iter().position(|k| *k == key) {
                Some(g) => groups[g].push(i),
                None => {
                    order.push(key);
                    groups.push(vec![i]);
                }
            }
        }
        groups
    }

    /// Row-major provenance grid.
    pub type RowStar = Vec<Vec<Expr>>;

    fn extract_groups_star(star: &RowStar, keys: &[usize], inputs: &[Table]) -> Vec<Vec<usize>> {
        let mut seen: Vec<Vec<Value>> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, row) in star.iter().enumerate() {
            // The old interpreter evaluated every key expression on every
            // grouping decision.
            let key: Vec<Value> = keys.iter().map(|&c| row[c].eval(inputs)).collect();
            match seen.iter().position(|k| *k == key) {
                Some(g) => groups[g].push(i),
                None => {
                    seen.push(key);
                    groups.push(vec![i]);
                }
            }
        }
        groups
    }

    /// The old provenance interpreter for the operator subset the
    /// benchmark queries use (input / group / partition / arithmetic).
    pub fn prov_evaluate(q: &Query, inputs: &[Table]) -> RowStar {
        match q {
            Query::Input(k) => {
                let t = &inputs[*k];
                (0..t.n_rows())
                    .map(|i| {
                        (0..t.n_cols())
                            .map(|j| Expr::Ref(CellRef::new(*k, i, j)))
                            .collect()
                    })
                    .collect()
            }
            Query::Group {
                src,
                keys,
                agg,
                target,
            } => {
                let star = prov_evaluate(src, inputs);
                let groups = extract_groups_star(&star, keys, inputs);
                groups
                    .into_iter()
                    .map(|g| {
                        let mut row: Vec<Expr> = keys
                            .iter()
                            .map(|&k| Expr::group(g.iter().map(|&i| star[i][k].clone()).collect()))
                            .collect();
                        let members: Vec<Expr> =
                            g.iter().map(|&i| star[i][*target].clone()).collect();
                        row.push(Expr::apply(FuncName::Agg(*agg), members));
                        row
                    })
                    .collect()
            }
            Query::Partition {
                src,
                keys,
                func,
                target,
            } => {
                let star = prov_evaluate(src, inputs);
                let groups = extract_groups_star(&star, keys, inputs);
                let mut new_col: Vec<Option<Expr>> = vec![None; star.len()];
                for g in &groups {
                    let members: Vec<Expr> = g.iter().map(|&i| star[i][*target].clone()).collect();
                    for (pos, &i) in g.iter().enumerate() {
                        new_col[i] = Some(window_term(*func, &members, pos));
                    }
                }
                star.into_iter()
                    .zip(new_col)
                    .map(|(mut row, cell)| {
                        row.push(cell.expect("grouped"));
                        row
                    })
                    .collect()
            }
            Query::Arith { src, func, cols } => {
                let star = prov_evaluate(src, inputs);
                star.into_iter()
                    .map(|mut row| {
                        let args: Vec<Expr> = cols.iter().map(|&c| row[c].clone()).collect();
                        row.push(sickle_core::expand_arith(func, &args));
                        row
                    })
                    .collect()
            }
            other => unimplemented!("legacy bench evaluator does not cover {other}"),
        }
    }

    fn window_term(func: AnalyticFunc, members: &[Expr], pos: usize) -> Expr {
        match func {
            AnalyticFunc::Agg(a) => Expr::apply(FuncName::Agg(a), members.to_vec()),
            AnalyticFunc::CumSum => {
                Expr::apply(FuncName::Agg(AggFunc::Sum), members[..=pos].to_vec())
            }
            AnalyticFunc::Rank | AnalyticFunc::DenseRank => {
                let mut args = Vec::with_capacity(members.len() + 1);
                args.push(members[pos].clone());
                args.extend(members.iter().cloned());
                let f = if func == AnalyticFunc::Rank {
                    FuncName::Rank
                } else {
                    FuncName::DenseRank
                };
                Expr::Apply(f, args)
            }
        }
    }

    /// The old abstract evaluation of the depth-2 partial query
    /// `partition(group(T, keys, α(t)), pkeys, □)`: the concrete inner
    /// group is evaluated precisely (row-major provenance + per-cell
    /// `refs()` sets + per-cell `eval()` concretization), then the strong
    /// partition rule unions per-group sets.
    pub fn abstract_depth2(
        group_q: &Query,
        pkeys: &[usize],
        inputs: &[Table],
        universe: &RefUniverse,
    ) -> Vec<Vec<RefSet>> {
        // Precise bundle of the concrete subquery.
        let star = prov_evaluate(group_q, inputs);
        let sets: Vec<Vec<RefSet>> = star
            .iter()
            .map(|row| row.iter().map(|e| universe.set_from(e.refs())).collect())
            .collect();
        let conc_rows: Vec<Vec<Value>> = star
            .iter()
            .map(|row| row.iter().map(|e| e.eval(inputs)).collect())
            .collect();
        let conc = Table::from_grid(Grid::from_rows(conc_rows).unwrap());
        // Strong rule: groups from the concrete table, unions of the
        // non-key columns.
        let groups = extract_groups(&conc, pkeys);
        let n_cols = conc.n_cols();
        let agg_cols: Vec<usize> = (0..n_cols).filter(|c| !pkeys.contains(c)).collect();
        let mut new_col: Vec<Option<RefSet>> = vec![None; conc.n_rows()];
        for g in &groups {
            let mut u = universe.empty_set();
            for &r in g {
                for &c in &agg_cols {
                    u.union_with(&sets[r][c]);
                }
            }
            for &r in g {
                new_col[r] = Some(u.clone());
            }
        }
        sets.into_iter()
            .zip(new_col)
            .map(|(mut row, cell)| {
                row.push(cell.expect("grouped"));
                row
            })
            .collect()
    }
}

/// Synthetic sales table: `n` rows over (region, quarter, revenue, target).
fn sales(n: usize) -> Table {
    let regions = ["north", "south", "east", "west", "center"];
    let rows = (0..n as i64)
        .map(|i| {
            let k = regions.len() as i64;
            vec![
                regions[(i % k) as usize].into(),
                ((i / k) % 4 + 1).into(),
                ((i * 37) % 1000).into(),
                (500 + (i * 13) % 400).into(),
            ]
        })
        .collect();
    Table::new(["region", "quarter", "revenue", "target"], rows).unwrap()
}

/// group(T, [region, quarter], sum(revenue)).
fn group_query() -> Query {
    Query::Group {
        src: Box::new(Query::Input(0)),
        keys: vec![0, 1],
        agg: AggFunc::Sum,
        target: 2,
    }
}

/// The depth-2 hot-path query: partition(group(...), [region], □) — the
/// shape the abstract analyzer evaluates for every sibling expansion.
fn depth2_partial() -> PQuery {
    PQuery::Partition {
        src: Box::new(PQuery::from_concrete(&group_query())),
        keys: Some(vec![0]),
        func: None,
    }
}

/// Depth-3 concrete pipeline: arith(partition(group(...))).
fn depth3_query() -> Query {
    Query::Arith {
        src: Box::new(Query::Partition {
            src: Box::new(group_query()),
            keys: vec![0],
            func: AnalyticFunc::CumSum,
            target: 2,
        }),
        func: ArithExpr::bin(
            ArithOp::Mul,
            ArithExpr::bin(ArithOp::Div, ArithExpr::Param(0), ArithExpr::Param(1)),
            ArithExpr::lit(100.0),
        ),
        cols: vec![3, 2],
    }
}

/// Best-of-N wall-clock of `f`, with one warmup run.
fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn row(name: &str, legacy: Duration, new: Duration) -> f64 {
    let speedup = legacy.as_secs_f64() / new.as_secs_f64().max(1e-9);
    println!("{name:44} legacy {legacy:>12.2?}   columnar {new:>12.2?}   speedup {speedup:>6.2}x");
    speedup
}

fn main() {
    println!(
        "engine micro-benchmarks (best of N, debug assertions {})",
        if cfg!(debug_assertions) {
            "ON — use --release"
        } else {
            "off"
        }
    );

    let mut speedups = Vec::new();

    // 1. extractGroups on 4000 rows, 20 groups.
    {
        let t = sales(4000);
        let legacy = time_best(10, || legacy::extract_groups(&t, &[0, 1]));
        let new = time_best(10, || sickle_table::extract_groups(&t, &[0, 1]));
        assert_eq!(
            legacy::extract_groups(&t, &[0, 1]),
            sickle_table::extract_groups(&t, &[0, 1]),
            "groupings must agree"
        );
        speedups.push(row("extract_groups/4000x20", legacy, new));
    }

    // 2. Provenance evaluation of group-by on 1200 rows.
    {
        let inputs = [sales(1200)];
        let q = group_query();
        let legacy = time_best(5, || legacy::prov_evaluate(&q, &inputs));
        let new = time_best(5, || prov_evaluate(&q, &inputs).unwrap());
        speedups.push(row("prov_evaluate/group/1200", legacy, new));
    }

    // 3. The headline: depth-2 abstract evaluation (the analyzer's hot
    //    path — one call per sibling expansion during search).
    {
        let inputs = [sales(800)];
        let universe = RefUniverse::from_tables(&inputs);
        let gq = group_query();
        let pq = depth2_partial();
        let legacy = time_best(5, || legacy::abstract_depth2(&gq, &[0], &inputs, &universe));
        // Fresh cache per iteration: the per-PQuery memo would otherwise
        // turn every timed run after the first into a pure cache hit.
        let new = time_best(5, || {
            abstract_evaluate(&pq, &inputs, &universe, &EvalCache::new()).unwrap()
        });
        // Cross-check: identical abstract sets.
        let l = legacy::abstract_depth2(&gq, &[0], &inputs, &universe);
        let cache = EvalCache::new();
        let n = abstract_evaluate(&pq, &inputs, &universe, &cache).unwrap();
        assert_eq!(n.sets.n_rows(), l.len());
        for (r, lrow) in l.iter().enumerate() {
            for (c, lset) in lrow.iter().enumerate() {
                assert_eq!(
                    *lset,
                    n.set(cache.pool(), r, c),
                    "abstract sets differ at ({r},{c})"
                );
            }
        }
        speedups.push(row("abstract_evaluate/depth2/800", legacy, new));
    }

    // 4. Concrete evaluation of the depth-3 pipeline (values channel; the
    //    legacy side pays the star detour the old concretize-based paths
    //    paid, the new side reads the values channel directly).
    {
        let inputs = [sales(1200)];
        let q = depth3_query();
        let legacy = time_best(5, || {
            let star = legacy::prov_evaluate(&q, &inputs);
            let rows: Vec<Vec<Value>> = star
                .iter()
                .map(|row| row.iter().map(|e| e.eval(&inputs)).collect())
                .collect();
            Table::from_grid(Grid::from_rows(rows).unwrap())
        });
        let new = time_best(5, || evaluate(&q, &inputs).unwrap());
        speedups.push(row("evaluate/depth3/1200", legacy, new));
    }

    // 5. Star-channel parity on the depth-3 pipeline.
    {
        let inputs = [sales(400)];
        let q = depth3_query();
        let legacy_star: legacy::RowStar = legacy::prov_evaluate(&q, &inputs);
        let new_star: ProvTable = prov_evaluate(&q, &inputs).unwrap();
        assert_eq!(legacy_star.len(), new_star.n_rows());
        for (r, lrow) in legacy_star.iter().enumerate() {
            for (c, le) in lrow.iter().enumerate() {
                assert_eq!(*le, new_star[(r, c)], "star terms differ at ({r},{c})");
            }
        }
        println!("star-channel parity on depth-3: ok");
    }

    let gm = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!(
        "geo-mean speedup: {gm:.2}x over {} benchmarks",
        speedups.len()
    );
    // Timing is advisory (shared CI runners are noisy); only the exact
    // output cross-checks above are hard failures.
    if gm <= 1.0 {
        println!("WARNING: columnar engine measured slower than the row-major baseline");
    }
}
