//! Criterion micro-benchmarks for the core machinery: the three semantics
//! and the two consistency checks, measured on the paper's running example.

use criterion::{criterion_group, criterion_main, Criterion};

use sickle_benchmarks::{all_benchmarks, Benchmark};
use sickle_core::{
    abstract_evaluate, demo_ref_sets, evaluate, prov_evaluate, PQuery, TaskContext,
};
use sickle_provenance::{demo_consistent, RefUniverse};

fn running_example() -> Benchmark {
    all_benchmarks()
        .into_iter()
        .find(|b| b.id == 44)
        .expect("benchmark 44")
}

fn bench_semantics(c: &mut Criterion) {
    let b = running_example();
    let q = b.ground_truth.clone();
    let inputs = b.inputs.clone();

    c.bench_function("evaluate/running-example", |bench| {
        bench.iter(|| evaluate(&q, &inputs).unwrap())
    });
    c.bench_function("prov_evaluate/running-example", |bench| {
        bench.iter(|| prov_evaluate(&q, &inputs).unwrap())
    });

    let universe = RefUniverse::from_tables(&inputs);
    let pq_partial = PQuery::Arith {
        src: Box::new(PQuery::Partition {
            src: Box::new(PQuery::Group {
                src: Box::new(PQuery::Input(0)),
                keys: Some(vec![0, 1, 4]),
                agg: None,
            }),
            keys: None,
            func: None,
        }),
        func: None,
    };
    c.bench_function("abstract_evaluate/partial-query", |bench| {
        bench.iter(|| abstract_evaluate(&pq_partial, &inputs, &universe).unwrap())
    });
}

fn bench_consistency(c: &mut Criterion) {
    let b = running_example();
    let (task, _gen) = b.task(2022).expect("demo generates");
    let star = prov_evaluate(&b.ground_truth, &task.inputs).unwrap();
    let demo = task.demo.clone();
    c.bench_function("demo_consistent/def1", |bench| {
        bench.iter(|| demo_consistent(&demo, &star).expect("consistent"))
    });

    let ctx = TaskContext::new(task);
    let refs = demo_ref_sets(ctx.demo(), &ctx.universe);
    let pq = PQuery::from_concrete(&b.ground_truth);
    c.bench_function("abstract_consistent/def3", |bench| {
        bench.iter(|| {
            let abs = sickle_core::abstract_evaluate_cached(
                &pq,
                ctx.inputs(),
                &ctx.universe,
                &ctx.eval_cache,
            )
            .unwrap();
            assert!(sickle_core::abstract_consistent(&refs, &abs));
        })
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(30);
    targets = bench_semantics, bench_consistency
}
criterion_main!(micro);
