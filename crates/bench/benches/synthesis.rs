//! Criterion benchmarks of end-to-end synthesis: one easy benchmark per
//! analyzer, plus the paper's running example restricted to its skeleton
//! (the full Fig. 12/13 sweep lives in the `experiments` binary — it runs
//! minutes, not Criterion's millisecond regime).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use sickle_baselines::{TypeAnalyzer, ValueAnalyzer};
use sickle_benchmarks::all_benchmarks;
use sickle_core::{
    synthesize, synthesize_seeded, Analyzer, PQuery, ProvenanceAnalyzer, SynthConfig,
    TaskContext,
};

fn bench_easy_synthesis(c: &mut Criterion) {
    let suite = all_benchmarks();
    let b = &suite[0]; // sales: total revenue per region (size 1)
    let (task, _) = b.task(2022).expect("demo generates");
    let ctx = TaskContext::new(task);
    let config = SynthConfig {
        max_solutions: 1,
        ..b.config()
    };

    let mut group = c.benchmark_group("synthesize/easy-group-sum");
    group.sample_size(20);
    let analyzers: [(&str, &dyn Analyzer); 3] = [
        ("sickle", &ProvenanceAnalyzer),
        ("type", &TypeAnalyzer),
        ("value", &ValueAnalyzer),
    ];
    for (name, analyzer) in analyzers {
        group.bench_with_input(BenchmarkId::from_parameter(name), &analyzer, |bench, a| {
            bench.iter(|| {
                let r = synthesize(&ctx, &config, *a);
                assert!(!r.solutions.is_empty());
            })
        });
    }
    group.finish();
}

fn bench_running_example_skeleton(c: &mut Criterion) {
    let suite = all_benchmarks();
    let b = &suite[43]; // the running example
    let (task, _) = b.task(2022).expect("demo generates");
    let ctx = TaskContext::new(task);
    let config = SynthConfig {
        max_solutions: 1,
        ..b.config()
    };
    let skeleton = PQuery::Arith {
        src: Box::new(PQuery::Partition {
            src: Box::new(PQuery::Group {
                src: Box::new(PQuery::Input(0)),
                keys: None,
                agg: None,
            }),
            keys: None,
            func: None,
        }),
        func: None,
    };
    let mut group = c.benchmark_group("synthesize/running-example-skeleton");
    group.sample_size(10);
    group.bench_function("sickle", |bench| {
        bench.iter(|| {
            let r = synthesize_seeded(
                &ctx,
                &config,
                &ProvenanceAnalyzer,
                vec![skeleton.clone()],
                |_| false,
            );
            assert!(!r.solutions.is_empty());
        })
    });
    group.finish();
}

criterion_group! {
    name = synthesis;
    config = Criterion::default();
    targets = bench_easy_synthesis, bench_running_example_skeleton
}
criterion_main!(synthesis);
