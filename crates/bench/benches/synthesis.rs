//! End-to-end synthesis benchmarks: one easy benchmark per analyzer, plus
//! the paper's running example restricted to its skeleton, plus the
//! parallel-vs-sequential skeleton search (the full Fig. 12/13 sweep lives
//! in the `experiments` binary — it runs minutes, not milliseconds).
//!
//! Plain `harness = false` timing (the offline environment has no
//! `criterion`). Run with `cargo bench -p sickle-bench --bench synthesis`.

use std::time::{Duration, Instant};

use sickle_baselines::{TypeAnalyzer, ValueAnalyzer};
use sickle_benchmarks::all_benchmarks;
use sickle_core::{
    synthesize, synthesize_parallel, synthesize_seeded, Analyzer, PQuery, ProvenanceAnalyzer,
    SynthConfig, TaskContext,
};

fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn main() {
    let suite = all_benchmarks();

    // Easy group-sum task, all three analyzers.
    {
        let b = &suite[0]; // sales: total revenue per region (size 1)
        let (task, _) = b.task(2022).expect("demo generates");
        let config = SynthConfig {
            max_solutions: 1,
            ..b.config()
        };
        let analyzers: [(&str, &dyn Analyzer); 3] = [
            ("sickle", &ProvenanceAnalyzer),
            ("type", &TypeAnalyzer),
            ("value", &ValueAnalyzer),
        ];
        for (name, analyzer) in analyzers {
            let ctx = TaskContext::new(task.clone());
            let dt = time_best(5, || {
                let r = synthesize(&ctx, &config, analyzer);
                assert!(!r.solutions.is_empty());
                r
            });
            println!("synthesize/easy-group-sum/{name:6} {dt:>12.2?}");
        }
    }

    // The running example restricted to its solution skeleton.
    {
        let b = &suite[43];
        let (task, _) = b.task(2022).expect("demo generates");
        let ctx = TaskContext::new(task);
        let config = SynthConfig {
            max_solutions: 1,
            ..b.config()
        };
        let skeleton = PQuery::Arith {
            src: Box::new(PQuery::Partition {
                src: Box::new(PQuery::Group {
                    src: Box::new(PQuery::Input(0)),
                    keys: None,
                    agg: None,
                }),
                keys: None,
                func: None,
            }),
            func: None,
        };
        let dt = time_best(3, || {
            let r = synthesize_seeded(
                &ctx,
                &config,
                &ProvenanceAnalyzer,
                vec![skeleton.clone()],
                |_| false,
            );
            assert!(!r.solutions.is_empty());
            r
        });
        println!("synthesize/running-example-skeleton    {dt:>12.2?}");
    }

    // Parallel skeleton expansion vs sequential: exhaust the same
    // bounded search space (depth-2 over the running example's demo, no
    // early exit), so both sides visit the identical node set and the
    // wall-clock ratio is the honest parallel speedup.
    {
        let b = &suite[43];
        let (task, _) = b.task(2022).expect("demo generates");
        let config = SynthConfig {
            max_depth: 2,
            max_solutions: usize::MAX,
            timeout: None,
            ..b.config()
        };
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!(
            "synthesize/exhaust-depth2: host has {cores} core(s); \
             expect ~flat scaling when cores=1"
        );
        let mut seq = Duration::ZERO;
        for workers in [1usize, 2, 4] {
            let mut visited = 0;
            let dt = time_best(3, || {
                let r = synthesize_parallel(
                    &task,
                    &config,
                    || Box::new(ProvenanceAnalyzer),
                    workers,
                    |_| false,
                );
                visited = r.stats.visited;
                r
            });
            if workers == 1 {
                seq = dt;
            }
            let speedup = seq.as_secs_f64() / dt.as_secs_f64().max(1e-9);
            println!(
                "synthesize/exhaust-depth2/workers={workers} {dt:>12.2?}  visited={visited}  speedup {speedup:.2}x"
            );
        }
    }
}
