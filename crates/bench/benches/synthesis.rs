//! End-to-end synthesis benchmarks: one easy benchmark per analyzer, plus
//! the paper's running example restricted to its skeleton, plus the
//! parallel-vs-sequential skeleton search (the full Fig. 12/13 sweep lives
//! in the `experiments` binary — it runs minutes, not milliseconds).
//!
//! All runs go through the session API (each timed run on a fresh
//! [`Session`], so the pool/caches are cold and runs are comparable).
//! Plain `harness = false` timing (the offline environment has no
//! `criterion`). Run with `cargo bench -p sickle-bench --bench synthesis`.

use std::time::{Duration, Instant};

use sickle_bench::Technique;
use sickle_benchmarks::all_benchmarks;
use sickle_core::{Budget, PQuery, Session, SynthRequest};

fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

fn main() {
    let suite = all_benchmarks();

    // Easy group-sum task, all three analyzers.
    {
        let b = &suite[0]; // sales: total revenue per region (size 1)
        let (task, _) = b.task(2022).expect("demo generates");
        for technique in Technique::ALL {
            let request = SynthRequest::from_task(task.clone())
                .with_search(b.config())
                .with_budget(Budget::default().with_max_solutions(1))
                .with_analyzer(technique.choice());
            let dt = time_best(5, || {
                let r = Session::new().solve(&request).expect("valid request");
                assert!(!r.solutions.is_empty());
                r
            });
            println!(
                "synthesize/easy-group-sum/{:6} {dt:>12.2?}",
                technique.label()
            );
        }
    }

    // The running example restricted to its solution skeleton.
    {
        let b = &suite[43];
        let (task, _) = b.task(2022).expect("demo generates");
        let skeleton = PQuery::Arith {
            src: Box::new(PQuery::Partition {
                src: Box::new(PQuery::Group {
                    src: Box::new(PQuery::Input(0)),
                    keys: None,
                    agg: None,
                }),
                keys: None,
                func: None,
            }),
            func: None,
        };
        let request = SynthRequest::from_task(task)
            .with_search(b.config())
            .with_budget(Budget::default().with_max_solutions(1))
            .with_seeds(vec![skeleton]);
        let dt = time_best(3, || {
            let r = Session::new().solve(&request).expect("valid request");
            assert!(!r.solutions.is_empty());
            r
        });
        println!("synthesize/running-example-skeleton    {dt:>12.2?}");
    }

    // Parallel skeleton expansion vs sequential: exhaust the same
    // bounded search space (depth-2 over the running example's demo, no
    // early exit), so both sides visit the identical node set and the
    // wall-clock ratio is the honest parallel speedup.
    {
        let b = &suite[43];
        let (task, _) = b.task(2022).expect("demo generates");
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!(
            "synthesize/exhaust-depth2: host has {cores} core(s); \
             expect ~flat scaling when cores=1"
        );
        let mut seq = Duration::ZERO;
        for workers in [1usize, 2, 4] {
            let request = SynthRequest::from_task(task.clone())
                .with_search(b.config().with_max_depth(2))
                .with_budget(Budget::unbounded().with_max_solutions(usize::MAX))
                .with_workers(workers);
            let mut visited = 0;
            let dt = time_best(3, || {
                let r = Session::new().solve(&request).expect("valid request");
                visited = r.stats.visited;
                r
            });
            if workers == 1 {
                seq = dt;
            }
            let speedup = seq.as_secs_f64() / dt.as_secs_f64().max(1e-9);
            println!(
                "synthesize/exhaust-depth2/workers={workers} {dt:>12.2?}  visited={visited}  speedup {speedup:.2}x"
            );
        }
    }
}
