//! Data-scale micro-benchmarks of the engine's bulk kernels: the hash
//! equi-join vs the legacy cross-product loop, and the vectorized
//! (single-hashed-pass, indexed-accumulate) group/window kernels vs the
//! row-at-a-time gather path they replaced.
//!
//! Inputs are the suite's kind of tables scaled to 10^4–10^6 rows by
//! seeded bootstrap sampling with a controlled join-key cardinality
//! (`sickle_benchmarks::scale_table_keyed`), so match rates and group
//! sizes stay predictable as the row count grows. Outputs are
//! cross-checked byte-for-byte between the A and B sides before timing
//! counts for anything.
//!
//! Plain `harness = false` timing (the offline environment has no
//! `criterion`):
//!
//! ```text
//! cargo bench -p sickle-bench --bench scale [-- --quick]
//! ```
//!
//! Knobs: `SICKLE_SCALE_ROWS=10000,100000` overrides the row-scale list;
//! `SICKLE_CHUNK_ROWS` sets the engine's morsel size (default 4096).
//! The run writes `BENCH_scale.json` for CI artifacts.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sickle_benchmarks::{scale_table_keyed, Rng};
use sickle_core::{exec_filtered_join_strategy, exec_step, JoinStrategy, Pred, Query, Semantics};
use sickle_table::{gather_column, AggFunc, AnalyticFunc, CmpOp, Table, Value};

fn main() {
    run();
}

/// Best-of-N wall-clock of `f`, with one warmup run.
fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

/// The row-scale axis: `SICKLE_SCALE_ROWS` (comma-separated) wins, then
/// quick/full defaults.
fn scales(quick: bool) -> Vec<usize> {
    if let Ok(s) = std::env::var("SICKLE_SCALE_ROWS") {
        let parsed: Vec<usize> = s
            .split(',')
            .filter_map(|x| x.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    if quick {
        vec![1_000, 10_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    }
}

/// Small hand-built source tables the scale axis bootstraps from — the
/// suite's shape: a keyed fact table and a keyed dimension table.
fn base_orders() -> Table {
    let mut rng = Rng::seed_from_u64(7);
    let rows: Vec<Vec<Value>> = (0..40)
        .map(|i| {
            vec![
                Value::Int(i % 8),
                Value::Int((rng.gen_range(50) + 1) as i64),
                Value::Int((rng.gen_range(900) + 100) as i64),
            ]
        })
        .collect();
    Table::new(["key", "qty", "price"], rows).expect("rectangular")
}

fn base_dims() -> Table {
    let rows: Vec<Vec<Value>> = (0..16)
        .map(|i| {
            let region = ["west", "east", "north", "south"][(i % 4) as usize];
            vec![Value::Int(i % 8), region.into()]
        })
        .collect();
    Table::new(["key", "region"], rows).expect("rectangular")
}

/// Row-at-a-time group discovery: the pre-vectorization idiom (one key
/// `Vec<Value>` cloned per row, hashed per row). First-seen group order,
/// exactly like the shipped kernel.
fn legacy_group_rows(t: &Table, keys: &[usize]) -> Vec<Vec<usize>> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for r in 0..t.n_rows() {
        let key: Vec<Value> = keys.iter().map(|&c| t.column(c)[r].clone()).collect();
        let g = *index.entry(key).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(r);
    }
    groups
}

struct JoinRow {
    name: String,
    rows_left: usize,
    rows_right: usize,
    out_rows: usize,
    hash: Duration,
    cross: Option<Duration>,
}

struct KernelRow {
    name: String,
    rows: usize,
    vectorized: Duration,
    legacy: Duration,
}

fn speedup(a: Duration, b: Duration) -> f64 {
    a.as_secs_f64() / b.as_secs_f64().max(1e-9)
}

#[allow(clippy::too_many_lines)]
fn run() {
    let quick = std::env::args().any(|a| a == "--quick");
    let chunk_rows = std::env::var("SICKLE_CHUNK_ROWS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4096);
    println!(
        "scale micro-benchmarks (best of N{}, chunk {chunk_rows}, debug assertions {})",
        if quick { ", --quick" } else { "" },
        if cfg!(debug_assertions) {
            "ON — use --release"
        } else {
            "off"
        }
    );

    let scales = scales(quick);
    // Cross A/B only while the pair count stays tractable; above that the
    // row reports hash-side throughput alone (the legacy path would take
    // minutes — the point of the tentpole).
    const MAX_CROSS_PAIRS: u64 = 200_000_000;

    let mut joins: Vec<JoinRow> = Vec::new();
    let mut kernels: Vec<KernelRow> = Vec::new();

    for &n in &scales {
        let card = (n / 100).max(16);
        let r_rows = (n / 100).max(50);
        let left = scale_table_keyed(&base_orders(), n, 0, card, 11);
        let right = scale_table_keyed(&base_dims(), r_rows, 0, card, 13);
        let inputs = vec![left, right];
        let le =
            exec_step(Semantics::Values, &Query::Input(0), &[], &inputs).expect("input 0 executes");
        let re =
            exec_step(Semantics::Values, &Query::Input(1), &[], &inputs).expect("input 1 executes");
        let l_cols = inputs[0].n_cols();

        // Scenario 1: pure equi-join `L.key = R.key`.
        // Scenario 2: equi key + residual `qty < 26` — the residual runs
        // on hash matches only.
        let equi = Pred::ColCmp(0, CmpOp::Eq, l_cols);
        let residual = Pred::And(
            Box::new(Pred::ColCmp(0, CmpOp::Eq, l_cols)),
            Box::new(Pred::ColConst(1, CmpOp::Lt, Value::Int(26))),
        );
        for (label, pred) in [("equi", &equi), ("equi+residual", &residual)] {
            let hash_out = exec_filtered_join_strategy(&le, &re, pred, JoinStrategy::Auto)
                .expect("hash join executes");
            let pairs = (inputs[0].n_rows() as u64) * (inputs[1].n_rows() as u64);
            let ab = pairs <= MAX_CROSS_PAIRS;
            if ab {
                let cross_out =
                    exec_filtered_join_strategy(&le, &re, pred, JoinStrategy::CrossLoop)
                        .expect("cross join executes");
                assert_eq!(
                    hash_out.table(),
                    cross_out.table(),
                    "hash-vs-cross verdict diverged on {label} at {n} rows"
                );
            }
            let iters = if quick { 2 } else { 3 };
            let hash = time_best(iters, || {
                exec_filtered_join_strategy(&le, &re, pred, JoinStrategy::Auto).unwrap()
            });
            let cross = ab.then(|| {
                let ci = if pairs > 20_000_000 { 1 } else { iters };
                time_best(ci, || {
                    exec_filtered_join_strategy(&le, &re, pred, JoinStrategy::CrossLoop).unwrap()
                })
            });
            let row = JoinRow {
                name: format!("join/{label}/{n}"),
                rows_left: inputs[0].n_rows(),
                rows_right: inputs[1].n_rows(),
                out_rows: hash_out.table().n_rows(),
                hash,
                cross,
            };
            let processed = (row.rows_left + row.rows_right + row.out_rows) as f64;
            match row.cross {
                Some(c) => println!(
                    "{:36} hash {:>11.2?}   cross {:>11.2?}   speedup {:>8.2}x   ({:.1}M rows/s)",
                    row.name,
                    row.hash,
                    c,
                    speedup(c, row.hash),
                    processed / row.hash.as_secs_f64().max(1e-9) / 1e6,
                ),
                None => println!(
                    "{:36} hash {:>11.2?}   cross     (skipped)   ({:.1}M rows/s)",
                    row.name,
                    row.hash,
                    processed / row.hash.as_secs_f64().max(1e-9) / 1e6,
                ),
            }
            joins.push(row);
        }

        // Group kernel A/B: hashed single-pass discovery + indexed
        // accumulate vs per-row key clones + gather-then-apply.
        let t = &inputs[0];
        let keys = [0usize];
        let vec_groups = sickle_table::extract_groups(t, &keys);
        let legacy_groups = legacy_group_rows(t, &keys);
        assert_eq!(
            vec_groups, legacy_groups,
            "group discovery diverged at {n} rows"
        );
        let col = t.column(2);
        let vec_sums: Vec<Value> = vec_groups
            .iter()
            .map(|g| AggFunc::Sum.apply_indexed(col, g))
            .collect();
        let legacy_sums: Vec<Value> = legacy_groups
            .iter()
            .map(|g| AggFunc::Sum.apply(&gather_column(col, g)))
            .collect();
        assert_eq!(vec_sums, legacy_sums, "group sums diverged at {n} rows");
        let iters = if quick { 3 } else { 5 };
        let vectorized = time_best(iters, || {
            let groups = sickle_table::extract_groups(t, &keys);
            groups
                .iter()
                .map(|g| AggFunc::Sum.apply_indexed(col, g))
                .collect::<Vec<Value>>()
        });
        let legacy = time_best(iters, || {
            let groups = legacy_group_rows(t, &keys);
            groups
                .iter()
                .map(|g| AggFunc::Sum.apply(&gather_column(col, g)))
                .collect::<Vec<Value>>()
        });
        let row = KernelRow {
            name: format!("group/sum/{n}"),
            rows: n,
            vectorized,
            legacy,
        };
        println!(
            "{:36} vec  {:>11.2?}   legacy {:>10.2?}   speedup {:>8.2}x",
            row.name,
            row.vectorized,
            row.legacy,
            speedup(row.legacy, row.vectorized),
        );
        kernels.push(row);

        // Window kernel A/B on bounded group sizes (the legacy cumsum is
        // quadratic in the group size by design — pinned semantics).
        let wfuncs = [
            ("cumsum", AnalyticFunc::CumSum),
            ("rank", AnalyticFunc::Rank),
        ];
        for (wname, func) in wfuncs {
            let vec_out: Vec<Vec<Value>> = vec_groups
                .iter()
                .map(|g| func.apply_indexed(col, g))
                .collect();
            let legacy_out: Vec<Vec<Value>> = vec_groups
                .iter()
                .map(|g| func.apply(&gather_column(col, g)))
                .collect();
            assert_eq!(vec_out, legacy_out, "window {wname} diverged at {n} rows");
            let vectorized = time_best(iters, || {
                vec_groups
                    .iter()
                    .map(|g| func.apply_indexed(col, g))
                    .collect::<Vec<Vec<Value>>>()
            });
            let legacy = time_best(iters, || {
                vec_groups
                    .iter()
                    .map(|g| func.apply(&gather_column(col, g)))
                    .collect::<Vec<Vec<Value>>>()
            });
            let row = KernelRow {
                name: format!("window/{wname}/{n}"),
                rows: n,
                vectorized,
                legacy,
            };
            println!(
                "{:36} vec  {:>11.2?}   legacy {:>10.2?}   speedup {:>8.2}x",
                row.name,
                row.vectorized,
                row.legacy,
                speedup(row.legacy, row.vectorized),
            );
            kernels.push(row);
        }
    }

    // The headline verdict: the equi-join A/B at the largest scale that
    // still ran both sides (10^5 in the default full run).
    let verdict = joins
        .iter()
        .filter(|r| r.cross.is_some() && r.name.starts_with("join/equi/"))
        .max_by_key(|r| r.rows_left);
    let (verdict_name, verdict_speedup) = match verdict {
        Some(r) => (
            r.name.clone(),
            speedup(r.cross.expect("filtered on cross"), r.hash),
        ),
        None => (String::from("(no A/B scenario ran)"), 0.0),
    };
    let pass = verdict_speedup >= 10.0;
    println!("verdict: {verdict_name} hash-vs-cross speedup {verdict_speedup:.1}x (>=10x: {pass})");
    if !pass {
        println!("WARNING: equi-join hash path below the 10x target");
    }

    // BENCH_scale.json.
    let mut out = String::from("{\n  \"schema\": \"sickle-bench/scale/v1\",\n");
    out.push_str(&format!(
        "  \"quick\": {quick},\n  \"chunk_rows\": {chunk_rows},\n  \"joins\": [\n"
    ));
    for (i, r) in joins.iter().enumerate() {
        let processed = (r.rows_left + r.rows_right + r.out_rows) as f64;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows_left\": {}, \"rows_right\": {}, \"out_rows\": {}, \
             \"hash_s\": {:.9}, \"cross_s\": {}, \"speedup\": {}, \"hash_rows_per_s\": {:.0}}}{}\n",
            r.name,
            r.rows_left,
            r.rows_right,
            r.out_rows,
            r.hash.as_secs_f64(),
            r.cross
                .map_or("null".to_string(), |c| format!("{:.9}", c.as_secs_f64())),
            r.cross
                .map_or("null".to_string(), |c| format!("{:.3}", speedup(c, r.hash))),
            processed / r.hash.as_secs_f64().max(1e-9),
            if i + 1 == joins.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"rows\": {}, \"vectorized_s\": {:.9}, \"legacy_s\": {:.9}, \
             \"speedup\": {:.3}}}{}\n",
            r.name,
            r.rows,
            r.vectorized.as_secs_f64(),
            r.legacy.as_secs_f64(),
            speedup(r.legacy, r.vectorized),
            if i + 1 == kernels.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"verdict\": {{\"scenario\": \"{verdict_name}\", \
         \"equi_join_speedup\": {verdict_speedup:.3}, \"pass\": {pass}}}\n}}\n"
    ));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scale.json");
    match std::fs::write(&path, out) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => println!("warning: could not write {}: {e}", path.display()),
    }
}
