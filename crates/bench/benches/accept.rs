//! Micro-benchmarks of the concrete acceptance path: the staged,
//! candidate-seeded pipeline (lazy per-cell set conversion → Def. 3
//! prefilter with a [`MatchSeed`] report → seeded, pre-keyed Def. 1
//! matching) vs the blind path it replaced (eager whole-grid conversion →
//! blind prefilter → blind `demo_consistent` restart).
//!
//! Candidates are *suite-derived*: for a handful of benchmarks the search
//! frontier is replayed exactly as `run_search` visits it (skeletons,
//! analyzer pruning, hole expansion), and every concrete candidate's
//! provenance star grid goes through both acceptance paths. Verdicts are
//! cross-checked per candidate before timing counts for anything.
//!
//! Plain `harness = false` timing (the offline environment has no
//! `criterion`):
//!
//! ```text
//! cargo bench -p sickle-bench --bench accept [-- --quick]
//! ```
//!
//! The run writes `BENCH_accept.json` (per-benchmark rows + geo-mean) for
//! CI artifacts.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sickle_benchmarks::{all_benchmarks, frontier_candidates};
use sickle_core::{
    CachePolicy, CacheStats, ProvTable, Query, Semantics, SynthConfig, SynthTask, TaskContext,
    BULK_COL_ROWS,
};
use sickle_provenance::{
    demo_consistent, demo_consistent_with_candidates, find_table_match,
    find_table_match_with_candidates, match_seed_rows, Demo, Expr, MatchDims, MatchSeed, RefSet,
    RefUniverse,
};
use sickle_table::Grid;

/// One suite-derived acceptance instance: a candidate's star grid.
struct Instance {
    star: ProvTable,
}

/// Replays the search frontier of one benchmark (pruned exactly as the
/// real search prunes it — [`frontier_candidates`]) and collects up to
/// `cap` concrete candidates' star grids.
fn collect_instances(ctx: &TaskContext, config: &SynthConfig, cap: usize) -> Vec<Instance> {
    frontier_candidates(ctx, config, cap, 60_000)
        .into_iter()
        .filter_map(|q| {
            ctx.eval_cache
                .exec(&q, Semantics::Provenance, ctx.inputs())
                .ok()
                .map(|exec| Instance {
                    star: exec.star().clone(),
                })
        })
        .collect()
}

/// The pre-change acceptance path: eager whole-grid conversion, blind
/// prefilter, blind Def. 1 restart.
fn accept_blind(
    demo: &Demo,
    demo_refs: &Grid<RefSet>,
    universe: &RefUniverse,
    star: &ProvTable,
) -> bool {
    let sets: Grid<RefSet> = star.map(|e| universe.set_from(e.refs()));
    let dims = MatchDims {
        demo_rows: demo_refs.n_rows(),
        demo_cols: demo_refs.n_cols(),
        table_rows: sets.n_rows(),
        table_cols: sets.n_cols(),
    };
    let feasible = find_table_match(dims, &mut |di, dj, ti, tj| {
        demo_refs[(di, dj)].is_subset_of(&sets[(ti, tj)])
    })
    .is_some();
    feasible && demo_consistent(demo, star).is_some()
}

/// The staged path as the search runs it: lazy, demo-targeted set
/// conversion with cross-candidate sharing (bulk per-column sets and
/// column-feasibility verdicts memoized by column identity — sibling
/// candidates share pass-through columns by `Arc`), then the prefilter
/// seeds the pre-keyed Def. 1 matcher with its surviving column/row
/// candidates instead of restarting blind.
struct StagedMatcher<'a> {
    demo: &'a Demo,
    demo_refs: &'a Grid<RefSet>,
    universe: &'a RefUniverse,
    /// Column identity → bulk-converted sets (small columns).
    col_sets: ColSetsMemo,
    /// (demo column, column identity) → column feasibility.
    col_hosts: ColHostsMemo,
}

/// Bulk column-set memo: column identity → (pinned column, its sets).
type ColSetsMemo = std::collections::HashMap<usize, (Arc<Vec<Expr>>, Arc<Vec<RefSet>>)>;

/// Column-feasibility memo: (demo column, column identity) → verdict.
type ColHostsMemo = std::collections::HashMap<(usize, usize), (Arc<Vec<Expr>>, bool)>;

impl<'a> StagedMatcher<'a> {
    fn new(demo: &'a Demo, demo_refs: &'a Grid<RefSet>, universe: &'a RefUniverse) -> Self {
        StagedMatcher {
            demo,
            demo_refs,
            universe,
            col_sets: ColSetsMemo::new(),
            col_hosts: ColHostsMemo::new(),
        }
    }

    fn accept(&mut self, star: &ProvTable) -> bool {
        let dims = MatchDims {
            demo_rows: self.demo_refs.n_rows(),
            demo_cols: self.demo_refs.n_cols(),
            table_rows: star.n_rows(),
            table_cols: star.n_cols(),
        };
        if dims.demo_rows > dims.table_rows || dims.demo_cols > dims.table_cols {
            return false;
        }
        let bulk = star.n_rows() <= BULK_COL_ROWS;
        // Per-candidate overlay: small columns resolve through the shared
        // bulk memo, large ones convert per probed cell, locally.
        let mut shared: Vec<Option<Arc<Vec<RefSet>>>> = vec![None; star.n_cols()];
        let mut local: Vec<Option<RefSet>> = if bulk {
            Vec::new()
        } else {
            vec![None; star.n_rows() * star.n_cols()]
        };
        let n_cols = star.n_cols();
        macro_rules! subset_ok {
            ($di:expr, $dj:expr, $ti:expr, $tj:expr) => {{
                let set: &RefSet = if bulk {
                    let col = shared[$tj].get_or_insert_with(|| {
                        let arc = star.column_arc($tj);
                        let key = Arc::as_ptr(arc) as usize;
                        match self.col_sets.get(&key) {
                            Some((_, sets)) => Arc::clone(sets),
                            None => {
                                let sets = Arc::new(
                                    arc.iter()
                                        .map(|e| self.universe.set_from(e.refs()))
                                        .collect::<Vec<RefSet>>(),
                                );
                                self.col_sets
                                    .insert(key, (Arc::clone(arc), Arc::clone(&sets)));
                                sets
                            }
                        }
                    });
                    &col[$ti]
                } else {
                    local[$ti * n_cols + $tj]
                        .get_or_insert_with(|| self.universe.set_from(star[($ti, $tj)].refs()))
                };
                self.demo_refs[($di, $dj)].is_subset_of(set)
            }};
        }

        let mut col_candidates: Vec<Vec<usize>> = Vec::with_capacity(dims.demo_cols);
        for dj in 0..dims.demo_cols {
            let mut cands = Vec::new();
            for tj in 0..dims.table_cols {
                let key = (dj, Arc::as_ptr(star.column_arc(tj)) as usize);
                let feasible = match (bulk, self.col_hosts.get(&key)) {
                    (true, Some((_, v))) => *v,
                    _ => {
                        let v = (0..dims.demo_rows)
                            .all(|di| (0..dims.table_rows).any(|ti| subset_ok!(di, dj, ti, tj)));
                        if bulk {
                            self.col_hosts
                                .insert(key, (Arc::clone(star.column_arc(tj)), v));
                        }
                        v
                    }
                };
                if feasible {
                    cands.push(tj);
                }
            }
            if cands.is_empty() {
                return false;
            }
            col_candidates.push(cands);
        }

        let found =
            find_table_match_with_candidates(dims, &col_candidates, &mut |di, dj, ti, tj| {
                subset_ok!(di, dj, ti, tj)
            })
            .is_some();
        if !found {
            return false;
        }

        let row_candidates = match_seed_rows(dims, &col_candidates, &mut |di, dj, ti, tj| {
            subset_ok!(di, dj, ti, tj)
        });
        let seed = MatchSeed {
            col_candidates,
            row_candidates,
        };
        demo_consistent_with_candidates(self.demo, star, &seed).is_some()
    }
}

/// Deterministic stride interleave: walks the list with `ways` equally
/// spaced cursors so sibling candidates (which share subquery children)
/// stop arriving consecutively — the access pattern that makes the real
/// search's engine cache churn (a shared child goes cold between its
/// uses and is a sweep victim unless the policy protects it).
fn interleave(v: &[Query], ways: usize) -> Vec<Query> {
    let chunk = v.len().div_ceil(ways.max(1));
    let mut out = Vec::with_capacity(v.len());
    for offset in 0..chunk {
        for w in 0..ways {
            if let Some(q) = v.get(w * chunk + offset) {
                out.push(q.clone());
            }
        }
    }
    out
}

/// One pass of the churn scenario: evaluate + accept every query of the
/// stream through a fresh engine cache under `policy`, reading the
/// engine's derived reference-set channel (what star-channel spilling
/// frees and re-derives). Returns the wall-clock, the per-query verdicts
/// and the cache churn counters.
fn churn_pass(
    task: &SynthTask,
    policy: CachePolicy,
    stream: &[Query],
) -> (Duration, Vec<bool>, CacheStats) {
    let ctx = TaskContext::with_policy(task.clone(), policy);
    let demo = ctx.demo().clone();
    let t0 = Instant::now();
    let verdicts = stream
        .iter()
        .map(
            |q| match ctx.eval_cache.exec(q, Semantics::Provenance, ctx.inputs()) {
                Ok(exec) => {
                    let star = exec.star();
                    let sets = exec.sets(&ctx.universe);
                    let dims = MatchDims {
                        demo_rows: ctx.demo_refs.n_rows(),
                        demo_cols: ctx.demo_refs.n_cols(),
                        table_rows: sets.n_rows(),
                        table_cols: sets.n_cols(),
                    };
                    let feasible = find_table_match(dims, &mut |di, dj, ti, tj| {
                        ctx.demo_refs[(di, dj)].is_subset_of(&sets[(ti, tj)])
                    })
                    .is_some();
                    feasible && demo_consistent(&demo, star).is_some()
                }
                Err(_) => false,
            },
        )
        .collect();
    (t0.elapsed(), verdicts, ctx.eval_cache.cache_stats())
}

/// One churn-scenario row (per benchmark): legacy vs cost-aware+spill
/// timings and counters at a deliberately tiny cache cap.
struct ChurnRow {
    name: String,
    cap: usize,
    legacy: Duration,
    spill: Duration,
    legacy_stats: CacheStats,
    spill_stats: CacheStats,
}

/// Best-of-N wall-clock of `f`, with one warmup run.
fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

struct Report {
    rows: Vec<(String, Duration, Duration)>,
    churn: Vec<ChurnRow>,
}

impl Report {
    fn row(&mut self, name: &str, blind: Duration, staged: Duration) {
        let speedup = blind.as_secs_f64() / staged.as_secs_f64().max(1e-9);
        println!(
            "{name:44} blind {blind:>12.2?}   staged {staged:>12.2?}   speedup {speedup:>6.2}x"
        );
        self.rows.push((name.to_string(), blind, staged));
    }

    fn churn_row(&mut self, row: ChurnRow) {
        let speedup = row.legacy.as_secs_f64() / row.spill.as_secs_f64().max(1e-9);
        println!(
            "{:44} legacy {:>11.2?}   spill {:>12.2?}   speedup {speedup:>6.2}x   \
             reevals {} -> {} (demotions {})",
            row.name,
            row.legacy,
            row.spill,
            row.legacy_stats.reevals,
            row.spill_stats.reevals,
            row.spill_stats.demotions,
        );
        self.churn.push(row);
    }

    fn geo_mean(&self) -> f64 {
        let ln_sum: f64 = self
            .rows
            .iter()
            .map(|(_, b, s)| (b.as_secs_f64() / s.as_secs_f64().max(1e-9)).ln())
            .sum();
        (ln_sum / self.rows.len() as f64).exp()
    }

    fn write_json(&self, quick: bool) {
        let mut out = String::from("{\n  \"schema\": \"sickle-bench/accept/v2\",\n");
        out.push_str(&format!("  \"quick\": {quick},\n  \"rows\": [\n"));
        for (i, (name, b, s)) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{name}\", \"blind_s\": {:.9}, \"staged_s\": {:.9}, \
                 \"speedup\": {:.3}}}{}\n",
                b.as_secs_f64(),
                s.as_secs_f64(),
                b.as_secs_f64() / s.as_secs_f64().max(1e-9),
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n  \"churn\": [\n");
        for (i, r) in self.churn.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cap\": {}, \"legacy_s\": {:.9}, \"spill_s\": {:.9}, \
                 \"speedup\": {:.3}, \"legacy_evictions\": {}, \"legacy_reevals\": {}, \
                 \"spill_evictions\": {}, \"spill_demotions\": {}, \"spill_reevals\": {}}}{}\n",
                r.name,
                r.cap,
                r.legacy.as_secs_f64(),
                r.spill.as_secs_f64(),
                r.legacy.as_secs_f64() / r.spill.as_secs_f64().max(1e-9),
                r.legacy_stats.evictions,
                r.legacy_stats.reevals,
                r.spill_stats.evictions,
                r.spill_stats.demotions,
                r.spill_stats.reevals,
                if i + 1 == self.churn.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"geo_mean_speedup\": {:.3}\n}}\n",
            self.geo_mean()
        ));
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_accept.json");
        match std::fs::write(&path, out) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => println!("warning: could not write {}: {e}", path.display()),
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "accept micro-benchmarks (best of N{}, debug assertions {})",
        if quick { ", --quick" } else { "" },
        if cfg!(debug_assertions) {
            "ON — use --release"
        } else {
            "off"
        }
    );

    // A spread of suite benchmarks: small single-input group tasks, a
    // partition-heavy task, and the heavy tail the acceptance rebuild
    // targeted.
    let bench_ids: &[usize] = if quick {
        &[1, 8, 44]
    } else {
        &[1, 8, 17, 44, 55, 76]
    };
    let (cap, iters) = if quick { (150, 3) } else { (400, 5) };

    let suite = all_benchmarks();
    let mut report = Report {
        rows: Vec::new(),
        churn: Vec::new(),
    };
    let mut total_instances = 0usize;
    for &id in bench_ids {
        let Some(b) = suite.iter().find(|b| b.id == id) else {
            println!("warning: no suite benchmark with id {id}");
            continue;
        };
        let (task, _) = b.task(2022).expect("benchmark demos generate");
        let demo = task.demo.clone();
        let config = b.config();
        let ctx = TaskContext::new(task);
        let instances = collect_instances(&ctx, &config, cap);
        total_instances += instances.len();
        let universe = &ctx.universe;
        let demo_refs = &ctx.demo_refs;

        // Cross-check: both paths must agree on every instance.
        {
            let mut m = StagedMatcher::new(&demo, demo_refs, universe);
            for (i, inst) in instances.iter().enumerate() {
                let blind = accept_blind(&demo, demo_refs, universe, &inst.star);
                let staged = m.accept(&inst.star);
                assert_eq!(blind, staged, "verdict mismatch on {} #{i}", b.name);
            }
        }

        let blind = time_best(iters, || {
            instances
                .iter()
                .filter(|inst| accept_blind(&demo, demo_refs, universe, &inst.star))
                .count()
        });
        // Fresh memos per iteration: the measured quantity is one pass of
        // the candidate stream through the shipped machinery, including
        // its cold start.
        let staged = time_best(iters, || {
            let mut m = StagedMatcher::new(&demo, demo_refs, universe);
            instances.iter().filter(|inst| m.accept(&inst.star)).count()
        });
        report.row(&format!("accept/{:02}-{}", b.id, b.name), blind, staged);
    }

    let gm = report.geo_mean();
    println!(
        "geo-mean speedup: {gm:.2}x over {} workloads ({total_instances} suite-derived candidates)",
        report.rows.len()
    );

    // Churn scenario: the join-heavy tasks the cost-aware eviction policy
    // targets, re-verified through a deliberately tiny engine cache so
    // every policy sweeps constantly. The candidate stream is stride-
    // interleaved (shared children go cold between uses) and runs twice
    // (the second round re-probes what round one cached: a demoted entry
    // pays set re-conversion, an evicted one pays full re-execution). The
    // same stream runs (1) on an effectively unbounded cache ("blind"
    // reference verdicts), (2) under the legacy flat second-chance
    // policy, and (3) under the cost-aware + star-channel-spilling
    // policy. Any verdict divergence between a spilled run and the blind
    // reference is a correctness bug: the assert aborts the bench (and
    // fails CI's bench-smoke job).
    const CHURN_CAP: usize = 48;
    let churn_ids: &[usize] = if quick { &[54] } else { &[54, 63] };
    let churn_iters = if quick { 2 } else { 3 };
    let candidate_cap = if quick { 200 } else { 400 };
    println!("\nchurn scenario (engine-cache cap {CHURN_CAP}, join-heavy tasks):");
    for &id in churn_ids {
        let Some(b) = suite.iter().find(|b| b.id == id) else {
            println!("warning: no suite benchmark with id {id}");
            continue;
        };
        let (task, _) = b.task(2022).expect("benchmark demos generate");
        let config = b.config();
        let scratch = TaskContext::new(task.clone());
        let candidates = frontier_candidates(&scratch, &config, candidate_cap, 60_000);
        drop(scratch);
        let mut stream = interleave(&candidates, 8);
        stream.extend(stream.clone());

        // Blind reference: no eviction pressure at all.
        let unbounded = CachePolicy::default().with_cap(usize::MAX);
        let (_, blind_verdicts, _) = churn_pass(&task, unbounded, &stream);

        let run = |policy: CachePolicy| {
            let mut best = Duration::MAX;
            let mut last = None;
            for _ in 0..churn_iters {
                let (d, v, s) = churn_pass(&task, policy, &stream);
                best = best.min(d);
                last = Some((v, s));
            }
            let (verdicts, stats) = last.expect("at least one iteration");
            (best, verdicts, stats)
        };
        let legacy_policy = CachePolicy::legacy().with_cap(CHURN_CAP);
        // Retention mode (low water above cap/2): cold expensive
        // survivors exist and get demoted instead of dropped.
        let spill_policy = CachePolicy::default()
            .with_cap(CHURN_CAP)
            .with_low_water(CHURN_CAP * 3 / 4);
        let (legacy, legacy_verdicts, legacy_stats) = run(legacy_policy);
        let (spill, spill_verdicts, spill_stats) = run(spill_policy);

        assert_eq!(
            spill_verdicts, blind_verdicts,
            "churn cross-check diverged (spilled vs blind) on task {id}"
        );
        assert_eq!(
            legacy_verdicts, blind_verdicts,
            "churn cross-check diverged (legacy vs blind) on task {id}"
        );
        if spill_stats.reevals > legacy_stats.reevals {
            println!(
                "WARNING: cost-aware policy re-evaluated more than legacy on task {id} \
                 ({} vs {})",
                spill_stats.reevals, legacy_stats.reevals
            );
        }
        report.churn_row(ChurnRow {
            name: format!("churn/{:02}-{}", b.id, b.name),
            cap: CHURN_CAP,
            legacy,
            spill,
            legacy_stats,
            spill_stats,
        });
    }

    report.write_json(quick);
    if gm <= 1.0 {
        println!("WARNING: staged acceptance measured slower than the blind path");
    }
}
