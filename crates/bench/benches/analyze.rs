//! Micro-benchmarks of the abstract-analysis data path: hash-consed,
//! pooled [`RefSet`]s (`RefSetPool` + `AnalysisCache`) vs a faithful
//! replica of the legacy `Vec<u64>` bitsets they replaced.
//!
//! The `legacy` module below replicates the pre-pool representation: a
//! full-width word vector per set (one heap allocation each), deep clones
//! on every broadcast, re-computed unions per sibling rule, and the
//! double-lookup `RefUniverse::index`. The pooled side is the shipped
//! code path: inline/copy-on-write sets interned to 4-byte ids, id
//! broadcasts, identity-memoized column unions, and the cross-sibling
//! Def. 3 verdict cache.
//!
//! Plain `harness = false` timing (the offline environment has no
//! `criterion`):
//!
//! ```text
//! cargo bench -p sickle-bench --bench analyze [-- --quick]
//! ```
//!
//! Each workload cross-checks that both implementations produce identical
//! results, prints a speedup row, and the run writes
//! `BENCH_analyze.json` (geo-mean + per-row numbers) for CI artifacts.

// The legacy replica deliberately mirrors the old index-based loops.
#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;
use std::time::{Duration, Instant};

use sickle_provenance::{
    find_table_match, AnalysisCache, CellRef, MatchDims, RefSet, RefSetPool, RefUniverse, SetId,
};
use sickle_table::{Grid, Table};

/// Replica of the pre-pool bitset stack, kept solely as the baseline.
mod legacy {
    use super::CellRef;

    pub struct Universe {
        dims: Vec<(usize, usize)>,
        offsets: Vec<usize>,
        n_bits: usize,
    }

    impl Universe {
        pub fn from_tables(shapes: &[(usize, usize)]) -> Universe {
            let mut dims = Vec::new();
            let mut offsets = Vec::new();
            let mut n_bits = 0;
            for &(r, c) in shapes {
                dims.push((r, c));
                offsets.push(n_bits);
                n_bits += r * c;
            }
            Universe {
                dims,
                offsets,
                n_bits,
            }
        }

        /// The old double-lookup index: `dims.get` then a second indexed
        /// load of `offsets`.
        #[inline]
        pub fn index(&self, r: CellRef) -> Option<usize> {
            let (rows, cols) = *self.dims.get(r.table)?;
            if r.row >= rows || r.col >= cols {
                return None;
            }
            Some(self.offsets[r.table] + r.row * cols + r.col)
        }

        pub fn empty_set(&self) -> Set {
            Set {
                words: vec![0; self.n_bits.div_ceil(64)],
            }
        }

        pub fn singleton(&self, r: CellRef) -> Set {
            let mut s = self.empty_set();
            s.insert(self, r);
            s
        }
    }

    /// The old full-width `Vec<u64>` bitset.
    #[derive(Clone, PartialEq, Eq)]
    pub struct Set {
        pub words: Vec<u64>,
    }

    impl Set {
        pub fn insert(&mut self, u: &Universe, r: CellRef) {
            if let Some(bit) = u.index(r) {
                self.words[bit / 64] |= 1 << (bit % 64);
            }
        }

        pub fn union_with(&mut self, other: &Set) {
            for (w, o) in self.words.iter_mut().zip(&other.words) {
                *w |= o;
            }
        }

        pub fn is_subset_of(&self, other: &Set) -> bool {
            self.words
                .iter()
                .zip(&other.words)
                .all(|(w, o)| w & !o == 0)
        }

        pub fn len(&self) -> usize {
            self.words.iter().map(|w| w.count_ones() as usize).sum()
        }
    }
}

/// Best-of-N wall-clock of `f`, with one warmup run.
fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> Duration {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed());
    }
    best
}

struct Report {
    rows: Vec<(String, Duration, Duration)>,
}

impl Report {
    fn row(&mut self, name: &str, legacy: Duration, pooled: Duration) {
        let speedup = legacy.as_secs_f64() / pooled.as_secs_f64().max(1e-9);
        println!(
            "{name:44} legacy {legacy:>12.2?}   pooled {pooled:>12.2?}   speedup {speedup:>6.2}x"
        );
        self.rows.push((name.to_string(), legacy, pooled));
    }

    fn geo_mean(&self) -> f64 {
        let ln_sum: f64 = self
            .rows
            .iter()
            .map(|(_, l, p)| (l.as_secs_f64() / p.as_secs_f64().max(1e-9)).ln())
            .sum();
        (ln_sum / self.rows.len() as f64).exp()
    }

    fn write_json(&self, quick: bool) {
        let mut out = String::from("{\n  \"schema\": \"sickle-bench/analyze/v1\",\n");
        out.push_str(&format!("  \"quick\": {quick},\n  \"rows\": [\n"));
        for (i, (name, l, p)) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{name}\", \"legacy_s\": {:.9}, \"pooled_s\": {:.9}, \
                 \"speedup\": {:.3}}}{}\n",
                l.as_secs_f64(),
                p.as_secs_f64(),
                l.as_secs_f64() / p.as_secs_f64().max(1e-9),
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"geo_mean_speedup\": {:.3}\n}}\n",
            self.geo_mean()
        ));
        // `cargo bench` runs with the package dir as cwd; put the artifact
        // at the workspace root alongside BENCH_synthesis.json.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_analyze.json");
        match std::fs::write(&path, out) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => println!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// A synthetic input table: `rows × cols`, values `row * cols + col`.
fn input_table(rows: usize, cols: usize) -> Table {
    Table::new(
        (0..cols).map(|c| format!("c{c}")).collect::<Vec<_>>(),
        (0..rows)
            .map(|r| (0..cols).map(|c| ((r * cols + c) as i64).into()).collect())
            .collect(),
    )
    .unwrap()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!(
        "analyze micro-benchmarks (best of N{}, debug assertions {})",
        if quick { ", --quick" } else { "" },
        if cfg!(debug_assertions) {
            "ON — use --release"
        } else {
            "off"
        }
    );

    let (rows, iters) = if quick { (24, 5) } else { (48, 10) };
    let cols = 6;
    // Two inputs: the second pushes the universe past 128 bits so the
    // shared (spilled) representation is exercised alongside the inline one.
    let inputs = [input_table(rows, cols), input_table(8, 4)];
    let universe = RefUniverse::from_tables(&inputs);
    let lu = legacy::Universe::from_tables(&[(rows, cols), (8, 4)]);
    let mut report = Report { rows: Vec::new() };

    // 1. RefUniverse::index: the per-cell inner-loop lookup (in-range and
    //    out-of-range mix), old double-lookup vs single-slot fast path.
    {
        let refs: Vec<CellRef> = (0..rows + 2)
            .flat_map(|r| (0..cols + 1).map(move |c| CellRef::new(0, r, c)))
            .chain((0..8).map(|r| CellRef::new(1, r, 0)))
            .collect();
        let legacy = time_best(iters * 200, || {
            refs.iter().filter_map(|&r| lu.index(r)).sum::<usize>()
        });
        let pooled = time_best(iters * 200, || {
            refs.iter()
                .filter_map(|&r| universe.index(r))
                .sum::<usize>()
        });
        assert_eq!(
            refs.iter().filter_map(|&r| lu.index(r)).collect::<Vec<_>>(),
            refs.iter()
                .filter_map(|&r| universe.index(r))
                .collect::<Vec<_>>(),
            "index functions must agree"
        );
        report.row("index/ref-universe", legacy, pooled);
    }

    // Per-cell sets of the child grid, both representations.
    let child_sets: Vec<Vec<RefSet>> = (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| universe.set_from([CellRef::new(0, r, c)]))
                .collect()
        })
        .collect();
    let child_legacy: Vec<Vec<legacy::Set>> = (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| lu.singleton(CellRef::new(0, r, c)))
                .collect()
        })
        .collect();

    // 2. The medium/weak broadcast: per-column unions assembled into an
    //    output row, broadcast over all rows, for every sibling key choice.
    //    Legacy deep-clones a bitset per output cell; pooled broadcasts
    //    4-byte ids and memoizes the column unions by column identity.
    {
        let pool = RefSetPool::new();
        let child_cols: Vec<std::sync::Arc<Vec<SetId>>> = (0..cols)
            .map(|c| {
                std::sync::Arc::new(
                    (0..rows)
                        .map(|r| pool.intern(child_sets[r][c].clone()))
                        .collect::<Vec<SetId>>(),
                )
            })
            .collect();
        let sibling_keys: Vec<Vec<usize>> = (0..cols)
            .flat_map(|a| (a + 1..cols).map(move |b| vec![a, b]))
            .collect();

        let legacy = time_best(iters, || {
            let mut total = 0usize;
            for keys in &sibling_keys {
                // Per-column unions (recomputed per sibling, one heap
                // allocation per union, exactly as the old rule did).
                let mut row: Vec<legacy::Set> = keys
                    .iter()
                    .map(|&k| {
                        let mut u = lu.empty_set();
                        for r in 0..rows {
                            u.union_with(&child_legacy[r][k]);
                        }
                        u
                    })
                    .collect();
                let mut agg = lu.empty_set();
                for c in 0..cols {
                    if !keys.contains(&c) {
                        for r in 0..rows {
                            agg.union_with(&child_legacy[r][c]);
                        }
                    }
                }
                row.push(agg);
                // Broadcast: clone every set `rows` times.
                let grid: Vec<Vec<legacy::Set>> = (0..rows).map(|_| row.clone()).collect();
                total += grid.len() * grid[0].len();
            }
            total
        });

        let pooled = time_best(iters, || {
            let mut col_memo: HashMap<usize, SetId> = HashMap::new();
            let mut total = 0usize;
            for keys in &sibling_keys {
                let mut union_of_col = |c: usize| -> SetId {
                    let key = std::sync::Arc::as_ptr(&child_cols[c]) as usize;
                    *col_memo
                        .entry(key)
                        .or_insert_with(|| pool.union_slice(&child_cols[c]))
                };
                let mut row: Vec<SetId> = keys.iter().map(|&k| union_of_col(k)).collect();
                let aggs: Vec<SetId> = (0..cols)
                    .filter(|c| !keys.contains(c))
                    .map(&mut union_of_col)
                    .collect();
                row.push(pool.union_slice(&aggs));
                let grid = Grid::from_columns(
                    row.iter()
                        .map(|&s| std::sync::Arc::new(vec![s; rows]))
                        .collect(),
                );
                total += grid.n_rows() * grid.n_cols();
            }
            total
        });

        // Cross-check one sibling's row contents.
        {
            let pool2 = RefSetPool::new();
            let keys = &sibling_keys[0];
            let mut legacy_union = lu.empty_set();
            for r in 0..rows {
                legacy_union.union_with(&child_legacy[r][keys[0]]);
            }
            let ids: Vec<SetId> = (0..rows)
                .map(|r| pool2.intern(child_sets[r][keys[0]].clone()))
                .collect();
            let pooled_union = pool2.get(pool2.union_slice(&ids));
            assert_eq!(
                legacy_union.len(),
                pooled_union.len(),
                "column unions must agree"
            );
        }
        report.row("broadcast/medium-group-siblings", legacy, pooled);
    }

    // 3. Strong-rule per-group unions across sibling key choices: in the
    //    shipped path, groupings are canonicalized by content and the
    //    per-group unions memoized by (column, grouping) identity, so
    //    sibling rules over the same partition reduce to probes. Legacy
    //    recomputed (and re-allocated) every union for every sibling.
    {
        let pool = RefSetPool::new();
        let child_cols: Vec<std::sync::Arc<Vec<SetId>>> = (0..cols)
            .map(|c| {
                std::sync::Arc::new(
                    (0..rows)
                        .map(|r| pool.intern(child_sets[r][c].clone()))
                        .collect::<Vec<SetId>>(),
                )
            })
            .collect();
        // Synthetic groupings: for modulus m, rows fall into m groups.
        // `sweeps` models the sibling key choices that induce the same
        // partition (key columns constant within groups).
        let groupings: Vec<Vec<Vec<usize>>> = [2usize, 3, 4, 6, 8]
            .iter()
            .map(|&m| {
                (0..m)
                    .map(|g| (0..rows).filter(|r| r % m == g).collect())
                    .collect()
            })
            .collect();
        let sweeps = 8;

        let legacy = time_best(iters, || {
            let mut sink = 0usize;
            for _ in 0..sweeps {
                for groups in &groupings {
                    for c in 0..cols {
                        for g in groups {
                            let mut u = lu.empty_set();
                            for &r in g {
                                u.union_with(&child_legacy[r][c]);
                            }
                            sink ^= u.len();
                        }
                    }
                }
            }
            sink
        });
        let pooled = time_best(iters, || {
            let mut memo: HashMap<(usize, usize), Vec<SetId>> = HashMap::new();
            let mut sink = 0usize;
            for _ in 0..sweeps {
                for (gi, groups) in groupings.iter().enumerate() {
                    for col in &child_cols {
                        let key = (std::sync::Arc::as_ptr(col) as usize, gi);
                        let unions = memo.entry(key).or_insert_with(|| {
                            groups.iter().map(|g| pool.union_rows(col, g)).collect()
                        });
                        for id in unions {
                            sink ^= id.raw() as usize;
                        }
                    }
                }
            }
            sink
        });
        // Cross-check: pooled per-group unions equal the legacy ones.
        for (gi, groups) in groupings.iter().enumerate() {
            let _ = gi;
            for (c, col) in child_cols.iter().enumerate() {
                for g in groups {
                    let mut u = lu.empty_set();
                    for &r in g {
                        u.union_with(&child_legacy[r][c]);
                    }
                    assert_eq!(
                        u.len(),
                        pool.set_len(pool.union_rows(col, g)),
                        "per-group unions must agree"
                    );
                }
            }
        }
        report.row("strong-group/per-group-unions", legacy, pooled);
    }

    // 4. Def. 3 consistency across sibling abstract tables: the same
    //    tables recur (structural propagation); pooled goes through the
    //    cross-sibling AnalysisCache, legacy re-matches every time.
    {
        let pool = RefSetPool::new();
        let cache = AnalysisCache::new();
        // Demo: two rows referencing column 0 and the per-row set of
        // column 1.
        let demo_cells = [
            [CellRef::new(0, 0, 0), CellRef::new(0, 0, 1)],
            [CellRef::new(0, 1, 0), CellRef::new(0, 1, 1)],
        ];
        let demo_legacy: Vec<Vec<legacy::Set>> = demo_cells
            .iter()
            .map(|row| row.iter().map(|&r| lu.singleton(r)).collect())
            .collect();
        let demo_ids: Grid<SetId> = Grid::from_rows(
            demo_cells
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|&r| pool.intern(universe.singleton(r)))
                        .collect()
                })
                .collect(),
        )
        .unwrap();
        let demo_token = cache.register_demo(&demo_ids);

        // Abstract tables: per-column singletons plus one union column —
        // large enough to engage the verdict memo; `sweeps` re-presents
        // each table the way sibling expansions re-present shared grids.
        let n_tables = 12;
        let sweeps = 16;
        let abs_legacy: Vec<Vec<Vec<legacy::Set>>> = (0..n_tables)
            .map(|t| {
                (0..rows)
                    .map(|r| {
                        (0..cols)
                            .map(|c| {
                                let mut s = lu.singleton(CellRef::new(0, r, c));
                                if c == t % cols {
                                    s.union_with(&lu.singleton(CellRef::new(1, r % 8, 0)));
                                }
                                s
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let abs_ids: Vec<Grid<SetId>> = abs_legacy
            .iter()
            .enumerate()
            .map(|(t, rows_sets)| {
                let _ = t;
                Grid::from_rows(
                    rows_sets
                        .iter()
                        .enumerate()
                        .map(|(r, row)| {
                            row.iter()
                                .enumerate()
                                .map(|(c, s)| {
                                    let mut set = universe.singleton(CellRef::new(0, r, c));
                                    if s.len() > 1 {
                                        set.union_with(&universe.singleton(CellRef::new(
                                            1,
                                            r % 8,
                                            0,
                                        )));
                                    }
                                    pool.intern(set)
                                })
                                .collect()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect();

        let dims = MatchDims {
            demo_rows: 2,
            demo_cols: 2,
            table_rows: rows,
            table_cols: cols,
        };
        let legacy = time_best(iters, || {
            let mut yes = 0usize;
            for _ in 0..sweeps {
                for table in &abs_legacy {
                    let ok = find_table_match(dims, &mut |di, dj, ti, tj| {
                        demo_legacy[di][dj].is_subset_of(&table[ti][tj])
                    })
                    .is_some();
                    yes += usize::from(ok);
                }
            }
            yes
        });
        let pooled = time_best(iters, || {
            let mut yes = 0usize;
            for _ in 0..sweeps {
                for table in &abs_ids {
                    yes += usize::from(cache.consistent(&demo_token, &demo_ids, table, &pool));
                }
            }
            yes
        });
        // Cross-check verdicts.
        for (table_l, table_p) in abs_legacy.iter().zip(&abs_ids) {
            let l = find_table_match(dims, &mut |di, dj, ti, tj| {
                demo_legacy[di][dj].is_subset_of(&table_l[ti][tj])
            })
            .is_some();
            assert_eq!(
                l,
                cache.consistent(&demo_token, &demo_ids, table_p, &pool),
                "Def. 3 verdicts must agree"
            );
        }
        report.row("def3/sibling-consistency", legacy, pooled);
    }

    let gm = report.geo_mean();
    println!(
        "geo-mean speedup: {gm:.2}x over {} workloads",
        report.rows.len()
    );
    report.write_json(quick);
    // Timing is advisory on shared CI runners; the cross-checks above are
    // the hard failures. Still flag an outright loss loudly.
    if gm <= 1.0 {
        println!("WARNING: pooled path measured slower than the legacy bitsets");
    }
}
