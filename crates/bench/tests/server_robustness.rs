//! Fault-injected end-to-end tests of the `sickle-serve` socket service
//! and the `sickle-shard` driver: every injected fault must surface as a
//! structured error or a clean recovery — never a dead server, a hung
//! client or a wrong merged result.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

const SERVE: &str = env!("CARGO_BIN_EXE_sickle-serve");
const SHARD: &str = env!("CARGO_BIN_EXE_sickle-shard");

/// A tiny deep search: unbounded budget, depth 3 — runs long enough to
/// observe cancellation, small enough to start instantly.
const LONG_REQUEST: &str = concat!(
    r#"{"id": "long", "tables": [{"columns": ["region", "revenue"], "#,
    r#""rows": [["west", 10], ["west", 20], ["east", 5]]}], "#,
    r#""demo": [["T[1,1]", "sum(T[1,2], T[2,2])"], ["T[3,1]", "sum(T[3,2])"]], "#,
    r#""max_depth": 3, "budget": {"timeout_secs": null, "max_solutions": 1000000}}"#,
);

/// A quick benchmark request (suite task 1 at a small visited budget).
fn quick_request(id: usize) -> String {
    format!(
        "{{\"id\": {id}, \"benchmark\": 1, \"budget\": \
         {{\"timeout_secs\": null, \"max_visited\": 3000, \"max_solutions\": 10}}}}"
    )
}

struct ServeProc {
    child: Child,
    sock: PathBuf,
    stderr_path: PathBuf,
    dir: tempdir::TempDir,
}

/// Minimal self-cleaning temp dir (no external crates).
mod tempdir {
    use std::path::{Path, PathBuf};

    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new(tag: &str) -> TempDir {
            let path = std::env::temp_dir().join(format!(
                "sickle-test-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::create_dir_all(&path).expect("create temp dir");
            TempDir(path)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

/// Spawns `sickle-serve --listen unix:…` with extra args/env and waits
/// until it accepts connections.
fn spawn_serve(tag: &str, extra_args: &[&str], env: &[(&str, &str)]) -> ServeProc {
    let dir = tempdir::TempDir::new(tag);
    let sock = dir.path().join("serve.sock");
    let stderr_path = dir.path().join("serve.log");
    let stderr = std::fs::File::create(&stderr_path).expect("create log file");
    let mut cmd = Command::new(SERVE);
    cmd.arg("--listen")
        .arg(format!("unix:{}", sock.display()))
        .args(extra_args)
        .env_remove("SICKLE_FAULT")
        .stderr(stderr)
        .stdout(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    let child = cmd.spawn().expect("spawn sickle-serve");
    let proc = ServeProc {
        child,
        sock,
        stderr_path,
        dir,
    };
    // Wait for the listening socket.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if UnixStream::connect(&proc.sock).is_ok() {
            return proc;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("sickle-serve never started listening on {:?}", proc.sock);
}

impl ServeProc {
    fn connect(&self) -> UnixStream {
        let s = UnixStream::connect(&self.sock).expect("connect to serve socket");
        s.set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout");
        s
    }

    fn stderr_contains(&self, needle: &str) -> bool {
        std::fs::read_to_string(&self.stderr_path)
            .map(|s| s.contains(needle))
            .unwrap_or(false)
    }

    /// Polls the server's stderr for a log marker.
    fn wait_for_stderr(&self, needle: &str, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.stderr_contains(needle) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        false
    }

    /// SIGTERM + wait; returns the exit code.
    fn terminate(mut self) -> i32 {
        let _ = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status();
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            if let Ok(Some(status)) = self.child.try_wait() {
                return status.code().unwrap_or(-1);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let _ = self.child.kill();
        panic!("sickle-serve did not exit after SIGTERM");
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = self.dir; // removed by TempDir::drop
    }
}

/// Sends one request line and reads response lines until the final
/// status-bearing one (skipping streamed events).
fn roundtrip(stream: &mut UnixStream, line: &str) -> String {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("send request");
    read_final_response(stream)
}

fn read_final_response(stream: &mut UnixStream) -> String {
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed before a final response");
        if line.contains("\"status\"") {
            return line.trim().to_string();
        }
    }
}

/// Renders one top-level response field (compared across runs; timings
/// are deliberately never compared).
fn field(response: &str, key: &str) -> String {
    sickle_bench::Json::parse(response)
        .expect("parse response")
        .get(key)
        .unwrap_or_else(|| panic!("no {key:?} in {response}"))
        .render()
}

/// Renders one `stats.*` counter of a response.
fn stat(response: &str, key: &str) -> String {
    sickle_bench::Json::parse(response)
        .expect("parse response")
        .get("stats")
        .and_then(|s| s.get(key))
        .unwrap_or_else(|| panic!("no stats.{key} in {response}"))
        .render()
}

// ---------------------------------------------------------------------------
// Scenario: panic injection leaves the server serving
// ---------------------------------------------------------------------------

#[test]
fn panic_injection_poisons_one_connection_not_the_server() {
    let serve = spawn_serve("panic", &[], &[("SICKLE_FAULT", "panic@request:2")]);

    let mut a = serve.connect();
    let ok = roundtrip(&mut a, &quick_request(1));
    assert!(ok.contains("\"status\":\"ok\""), "first request ok: {ok}");

    // Second request trips the injected panic: a structured internal
    // error comes back, then the connection closes.
    let err = roundtrip(&mut a, &quick_request(2));
    assert!(err.contains("\"status\":\"error\""), "got: {err}");
    assert!(err.contains("\"kind\":\"internal\""), "got: {err}");
    let mut rest = String::new();
    let n = BufReader::new(&mut a)
        .read_to_string(&mut rest)
        .unwrap_or(0);
    assert_eq!(n, 0, "poisoned connection was closed, got: {rest}");

    // The server itself survived: a fresh connection works.
    let mut b = serve.connect();
    let ok = roundtrip(&mut b, &quick_request(3));
    assert!(
        ok.contains("\"status\":\"ok\""),
        "server still serves: {ok}"
    );
    assert!(serve.stderr_contains("request handler panicked"));
    assert_eq!(serve.terminate(), 0, "clean exit after drain");
}

// ---------------------------------------------------------------------------
// Scenario: the watchdog bounds every request server-side
// ---------------------------------------------------------------------------

#[test]
fn watchdog_fires_on_stalled_search_and_server_stays_up() {
    // stall@analyze wedges the search worker inside an analyzer call
    // (ignoring cancellation); the watchdog must fire, then the grace
    // period must expire and detach the worker.
    let serve = spawn_serve(
        "watchdog",
        &["--watchdog-secs", "0.5", "--grace-ms", "500"],
        &[("SICKLE_FAULT", "stall@analyze:1:60000")],
    );
    let mut c = serve.connect();
    let t0 = Instant::now();
    let response = roundtrip(&mut c, LONG_REQUEST);
    assert!(
        response.contains("\"kind\":\"canceled\""),
        "stalled search becomes a structured canceled error: {response}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "watchdog + grace bounded the stall ({:?})",
        t0.elapsed()
    );
    assert!(serve.wait_for_stderr("watchdog fired", Duration::from_secs(5)));

    // The wedged worker is detached, not joined: the same connection and
    // the server both keep working.
    let ok = roundtrip(&mut c, &quick_request(2));
    assert!(ok.contains("\"status\":\"ok\""), "server alive: {ok}");
    assert_eq!(serve.terminate(), 0);
}

#[test]
fn watchdog_bounds_unbounded_requests() {
    // No injected stall: a cooperative search is canceled at the deadline
    // and still returns its partial result as a normal ok response.
    let serve = spawn_serve("deadline", &["--watchdog-secs", "0.5"], &[]);
    let mut c = serve.connect();
    let t0 = Instant::now();
    let response = roundtrip(&mut c, LONG_REQUEST);
    assert!(
        response.contains("\"status\":\"ok\"") && response.contains("\"timed_out\":true"),
        "deadline surfaces as a timed-out ok response: {response}"
    );
    assert!(t0.elapsed() < Duration::from_secs(30));
    assert_eq!(serve.terminate(), 0);
}

// ---------------------------------------------------------------------------
// Scenario: client hangup cancels the in-flight search
// ---------------------------------------------------------------------------

#[test]
fn client_hangup_cancels_in_flight_search() {
    let serve = spawn_serve("hangup", &[], &[]);
    {
        let mut c = serve.connect();
        c.write_all(format!("{LONG_REQUEST}\n").as_bytes())
            .expect("send request");
        // Give the search a moment to start, then vanish.
        std::thread::sleep(Duration::from_millis(300));
        drop(c);
    }
    assert!(
        serve.wait_for_stderr("client hung up; search canceled", Duration::from_secs(15)),
        "the EOF probe tripped the request's cancel token"
    );
    // The slot was freed: a new client is served promptly.
    let mut c = serve.connect();
    let ok = roundtrip(&mut c, &quick_request(9));
    assert!(ok.contains("\"status\":\"ok\""), "got: {ok}");
    assert_eq!(serve.terminate(), 0);
}

// ---------------------------------------------------------------------------
// Scenario: admission control sheds load with a structured error
// ---------------------------------------------------------------------------

#[test]
fn overload_is_shed_with_a_structured_error() {
    let serve = spawn_serve("overload", &["--max-inflight", "1", "--queue", "0"], &[]);
    let mut a = serve.connect();
    a.write_all(format!("{LONG_REQUEST}\n").as_bytes())
        .expect("send long request");
    std::thread::sleep(Duration::from_millis(300));

    let mut b = serve.connect();
    let t0 = Instant::now();
    let shed = roundtrip(&mut b, &quick_request(2));
    assert!(
        shed.contains("\"kind\":\"overloaded\""),
        "second client is shed: {shed}"
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shedding is immediate, not queued ({:?})",
        t0.elapsed()
    );
    // Drain: the in-flight search is canceled and still answered.
    let code = serve.terminate();
    assert_eq!(code, 0);
    let response = read_final_response(&mut a);
    assert!(
        response.contains("\"status\":\"ok\""),
        "in-flight request answered during drain: {response}"
    );
}

// ---------------------------------------------------------------------------
// Scenario: oversized request lines are rejected, connection survives
// ---------------------------------------------------------------------------

#[test]
fn oversized_line_gets_invalid_request_and_connection_continues() {
    let serve = spawn_serve("oversize", &["--max-line-bytes", "512"], &[]);
    let mut c = serve.connect();
    let huge = format!("{{\"id\": 1, \"junk\": \"{}\"}}", "x".repeat(4096));
    let rejected = roundtrip(&mut c, &huge);
    assert!(
        rejected.contains("\"kind\":\"invalid_request\""),
        "oversized line structurally rejected: {rejected}"
    );
    // Same connection keeps working (the reader resynced at the newline).
    let ok = roundtrip(&mut c, &quick_request(2));
    assert!(ok.contains("\"status\":\"ok\""), "got: {ok}");
    assert_eq!(serve.terminate(), 0);
}

// ---------------------------------------------------------------------------
// Scenario: concurrent clients get exactly the serial answers
// ---------------------------------------------------------------------------

#[test]
fn concurrent_clients_match_serial_responses() {
    let serve = spawn_serve("concurrent", &[], &[]);
    let ids = [1usize, 2, 3];

    // Serial baseline over one connection.
    let mut serial = Vec::new();
    let mut c = serve.connect();
    for &id in &ids {
        serial.push(roundtrip(&mut c, &quick_request(id)));
    }

    // The same three requests, one connection each, all at once.
    let handles: Vec<_> = ids
        .iter()
        .map(|&id| {
            let mut c = serve.connect();
            std::thread::spawn(move || roundtrip(&mut c, &quick_request(id)))
        })
        .collect();
    let concurrent: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (serial, concurrent) in serial.iter().zip(&concurrent) {
        // Timings differ run to run; every deterministic field must not.
        for key in ["solutions", "solved", "rank", "timed_out"] {
            assert_eq!(
                field(serial, key),
                field(concurrent, key),
                "{key} diverged between serial and concurrent runs"
            );
        }
        for key in ["visited", "pruned"] {
            assert_eq!(
                stat(serial, key),
                stat(concurrent, key),
                "stats.{key} diverged"
            );
        }
    }
    assert_eq!(serve.terminate(), 0);
}

// ---------------------------------------------------------------------------
// Scenario: graceful drain answers in-flight work and exits 0
// ---------------------------------------------------------------------------

#[test]
fn sigterm_drains_in_flight_request_and_exits_zero() {
    let serve = spawn_serve("drain", &[], &[]);
    let mut c = serve.connect();
    c.write_all(format!("{LONG_REQUEST}\n").as_bytes())
        .expect("send request");
    std::thread::sleep(Duration::from_millis(300));
    let code = serve.terminate();
    assert_eq!(code, 0, "graceful drain exits 0");
    let response = read_final_response(&mut c);
    assert!(
        response.contains("\"status\":\"ok\""),
        "the in-flight search was canceled, not dropped: {response}"
    );
}

// ---------------------------------------------------------------------------
// Scenario: the soft memory watermark degrades, never changes answers
// ---------------------------------------------------------------------------

/// [`roundtrip`] that honors `overloaded` shedding like the shard driver:
/// waits out the server's `retry_after_ms` hint and retries.
fn roundtrip_with_retry(stream: &mut UnixStream, line: &str) -> String {
    for _ in 0..40 {
        let response = roundtrip(stream, line);
        if !response.contains("\"kind\":\"overloaded\"") {
            return response;
        }
        let hint = sickle_bench::Json::parse(&response)
            .ok()
            .and_then(|j| j.get("error")?.get("retry_after_ms")?.as_f64())
            .unwrap_or(250.0);
        std::thread::sleep(Duration::from_millis((hint as u64).min(2_000)));
    }
    panic!("request was shed on every retry");
}

/// Parses the last `bytes=N)` marker from the serve log: the exact pooled
/// byte footprint after the last answered request.
fn last_pooled_bytes(serve: &ServeProc) -> usize {
    let log = std::fs::read_to_string(&serve.stderr_path).expect("read serve log");
    log.lines()
        .rev()
        .find_map(|l| {
            let (_, rest) = l.split_once("bytes=")?;
            rest.trim_end_matches(')').parse().ok()
        })
        .expect("no bytes= marker in serve log")
}

#[test]
fn soft_watermark_degrades_cache_policy_but_answers_stay_identical() {
    let ids = [1usize, 2, 3];

    // Baseline: no memory budget. The log's bytes= marker then tells us
    // the exact pooled footprint of this workload (the accounting is
    // deterministic byte arithmetic, not real allocator state).
    let baseline_serve = spawn_serve("soft-base", &[], &[]);
    let mut c = baseline_serve.connect();
    let baseline: Vec<String> = ids
        .iter()
        .map(|&id| roundtrip(&mut c, &quick_request(id)))
        .collect();
    assert!(baseline_serve.wait_for_stderr("bytes=", Duration::from_secs(5)));
    let pooled = last_pooled_bytes(&baseline_serve);
    assert!(pooled > 0, "memory accounting reported an empty pool");
    assert_eq!(baseline_serve.terminate(), 0);

    // Rerun with a budget placing that footprint at ~88% — inside the
    // soft band (>=80%) but below the hard watermark (95%).
    let budget = (pooled * 100 / 88).to_string();
    let serve = spawn_serve("soft", &["--max-bytes", &budget], &[]);
    let mut warm = serve.connect();
    for &id in &ids {
        // Warm-up round fills the pool up to the soft band.
        roundtrip_with_retry(&mut warm, &quick_request(id));
    }
    assert!(
        serve.wait_for_stderr("memory pressure 0 -> 1", Duration::from_secs(10)),
        "the pool never crossed the soft watermark"
    );

    // Concurrent clients under soft pressure: degraded cache policy and
    // admission shedding may delay answers, never change them.
    let handles: Vec<_> = ids
        .iter()
        .map(|&id| {
            let mut c = serve.connect();
            std::thread::spawn(move || roundtrip_with_retry(&mut c, &quick_request(id)))
        })
        .collect();
    let pressured: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        serve.stderr_contains("soft watermark: engine cache degraded"),
        "pressured round ran without the degraded cache policy"
    );
    for (base, pressured) in baseline.iter().zip(&pressured) {
        for key in ["solutions", "solved", "rank", "timed_out"] {
            assert_eq!(
                field(base, key),
                field(pressured, key),
                "{key} diverged under the soft watermark"
            );
        }
        for key in ["visited", "pruned"] {
            assert_eq!(
                stat(base, key),
                stat(pressured, key),
                "stats.{key} diverged"
            );
        }
    }
    assert_eq!(serve.terminate(), 0);
}

// ---------------------------------------------------------------------------
// Scenario: the hard watermark sheds the search, the server survives
// ---------------------------------------------------------------------------

#[test]
fn hard_watermark_answers_resource_exhausted_and_server_survives() {
    // A budget below what this search provably pools (the deep request
    // interns ~2.6 KiB of reference sets): a watchdog poll crosses the
    // hard watermark mid-search and must shed with a structured error
    // instead of growing without bound.
    let serve = spawn_serve("hard", &["--max-bytes", "2048"], &[]);
    let mut c = serve.connect();
    let killed = roundtrip(&mut c, LONG_REQUEST);
    assert!(
        killed.contains("\"kind\":\"resource_exhausted\""),
        "hard watermark sheds with resource_exhausted: {killed}"
    );
    assert!(serve.wait_for_stderr("hard watermark: search canceled", Duration::from_secs(5)));

    // The server survived and still answers — structurally, on the same
    // connection and on a fresh one.
    let again = roundtrip(&mut c, LONG_REQUEST);
    assert!(
        again.contains("\"status\":\"error\""),
        "same connection still answered: {again}"
    );
    let mut b = serve.connect();
    let fresh = roundtrip(&mut b, LONG_REQUEST);
    assert!(
        fresh.contains("\"status\":\"error\""),
        "fresh connection still answered: {fresh}"
    );
    assert_eq!(serve.terminate(), 0);
}

// ---------------------------------------------------------------------------
// Scenario: injected oom@analyze == hard watermark, server keeps serving
// ---------------------------------------------------------------------------

#[test]
fn oom_fault_forces_resource_exhausted_then_serving_continues() {
    let serve = spawn_serve("oom", &[], &[("SICKLE_FAULT", "oom@analyze:1")]);
    let mut c = serve.connect();
    let killed = roundtrip(&mut c, &quick_request(1));
    assert!(
        killed.contains("\"kind\":\"resource_exhausted\""),
        "oom@analyze answers resource_exhausted: {killed}"
    );
    assert!(
        killed.contains("injected fault"),
        "the forced kill is attributed to the fault: {killed}"
    );

    // One-shot fault: the next request succeeds and reports a nonzero
    // memory footprint in its wire stats.
    let ok = roundtrip(&mut c, &quick_request(2));
    assert!(
        ok.contains("\"status\":\"ok\""),
        "server kept serving: {ok}"
    );
    let mem: f64 = stat(&ok, "mem_bytes").parse().expect("numeric mem_bytes");
    assert!(mem > 0.0, "mem_bytes must be nonzero: {ok}");
    assert_eq!(serve.terminate(), 0);
}

// ---------------------------------------------------------------------------
// Scenario: slowwrite@response stalls mid-line but delivers intact JSON
// ---------------------------------------------------------------------------

#[test]
fn slowwrite_fault_delivers_an_intact_response() {
    let serve = spawn_serve(
        "slowwrite",
        &[],
        &[("SICKLE_FAULT", "slowwrite@response:1:300")],
    );
    let mut c = serve.connect();
    let t0 = Instant::now();
    let slow = roundtrip(&mut c, &quick_request(1));
    assert!(
        t0.elapsed() >= Duration::from_millis(300),
        "the mid-line stall was injected"
    );
    assert!(slow.contains("\"status\":\"ok\""), "got: {slow}");
    sickle_bench::Json::parse(&slow).expect("the split write reassembled into valid JSON");
    assert!(serve.stderr_contains("injected fault: slowwrite@response"));

    // The torn write did not desync the connection.
    let ok = roundtrip(&mut c, &quick_request(2));
    assert!(ok.contains("\"status\":\"ok\""), "got: {ok}");
    assert_eq!(serve.terminate(), 0);
}

// ---------------------------------------------------------------------------
// Scenario: startup configuration errors exit 2 (never restart), runtime
// crashes exit nonzero-but-restartable
// ---------------------------------------------------------------------------

#[test]
fn startup_config_errors_exit_with_the_config_code() {
    // Malformed fault spec.
    let out = Command::new(SERVE)
        .env("SICKLE_FAULT", "warp@request")
        .stdin(Stdio::null())
        .output()
        .expect("run sickle-serve");
    assert_eq!(
        out.status.code(),
        Some(2),
        "malformed SICKLE_FAULT is a config error: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.trim().lines().count(),
        1,
        "config errors are one structured line: {stderr}"
    );
    assert!(stderr.contains("config error"), "got: {stderr}");
    assert!(stderr.contains("SICKLE_FAULT"), "got: {stderr}");

    // Unparseable --listen spec.
    let out = Command::new(SERVE)
        .args(["--listen", "carrier-pigeon:coop"])
        .env_remove("SICKLE_FAULT")
        .stdin(Stdio::null())
        .output()
        .expect("run sickle-serve");
    assert_eq!(
        out.status.code(),
        Some(2),
        "bad --listen spec is a config error: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("config error"));

    // Unknown flag.
    let out = Command::new(SERVE)
        .arg("--warp-speed")
        .env_remove("SICKLE_FAULT")
        .stdin(Stdio::null())
        .output()
        .expect("run sickle-serve");
    assert_eq!(out.status.code(), Some(2));
}

// ---------------------------------------------------------------------------
// Scenario: sharded suite == single shard, even with a dying shard
// ---------------------------------------------------------------------------

fn run_shard(shards: usize, faults: &[(usize, &str)]) -> Output {
    let mut cmd = Command::new(SHARD);
    cmd.args(["--shards", &shards.to_string()])
        .args(["--serve-bin", SERVE])
        .env("SICKLE_ONLY", "1,2,3,5")
        .env("SICKLE_MAX_VISITED", "3000")
        .env("SICKLE_JSON", "") // dump equality is what's under test
        .env_remove("SICKLE_FAULT");
    for (i, spec) in faults {
        cmd.env(format!("SICKLE_SHARD_FAULT_{i}"), spec);
    }
    cmd.output().expect("run sickle-shard")
}

#[test]
fn sharded_merge_is_byte_identical_even_with_a_dead_shard() {
    let oracle = run_shard(1, &[]);
    assert!(
        oracle.status.success(),
        "single shard run: {}",
        String::from_utf8_lossy(&oracle.stderr)
    );
    assert!(
        String::from_utf8_lossy(&oracle.stdout).contains("## "),
        "oracle produced task blocks"
    );

    let two = run_shard(2, &[]);
    assert!(two.status.success());
    assert_eq!(
        String::from_utf8_lossy(&oracle.stdout),
        String::from_utf8_lossy(&two.stdout),
        "2-shard merge is byte-identical to the single-shard dump"
    );

    // Shard 0 dies on its very first request: detection + requeue +
    // reassignment must keep the merged output byte-identical.
    let dead = run_shard(2, &[(0, "exit@request:1")]);
    assert!(
        dead.status.success(),
        "dead-shard run still covers every task: {}",
        String::from_utf8_lossy(&dead.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&oracle.stdout),
        String::from_utf8_lossy(&dead.stdout),
        "merge with a dead shard is byte-identical to the oracle"
    );
    let stderr = String::from_utf8_lossy(&dead.stderr);
    assert!(
        stderr.contains("requeueing task"),
        "the death was detected and the task requeued: {stderr}"
    );
}

// ---------------------------------------------------------------------------
// Scenario: SIGKILL mid-run, then --resume completes byte-identically
// ---------------------------------------------------------------------------

/// SIGKILLs any `sickle-serve` orphaned by killing shard driver `pid`
/// (matched by the driver-unique socket directory in its command line, so
/// servers of concurrently running tests are never touched).
fn kill_orphan_serves(driver_pid: u32) {
    let token = format!("sickle-shard-{driver_pid}");
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let cmdline = entry.path().join("cmdline");
        if std::fs::read(&cmdline)
            .map(|bytes| String::from_utf8_lossy(&bytes).contains(&token))
            .unwrap_or(false)
        {
            let _ = Command::new("kill")
                .args(["-KILL", &pid.to_string()])
                .status();
        }
    }
}

#[test]
fn journal_resume_after_sigkill_is_byte_identical() {
    let oracle = run_shard(1, &[]);
    assert!(
        oracle.status.success(),
        "oracle run: {}",
        String::from_utf8_lossy(&oracle.stderr)
    );

    // Run with a work journal and SIGKILL the driver as soon as the
    // journal records a completed task — no drain, no cleanup.
    let dir = tempdir::TempDir::new("journal");
    let journal = dir.path().join("work.journal");
    let mut child = Command::new(SHARD)
        .args(["--shards", "1", "--journal"])
        .arg(&journal)
        .args(["--serve-bin", SERVE])
        .env("SICKLE_ONLY", "1,2,3,5")
        .env("SICKLE_MAX_VISITED", "3000")
        .env("SICKLE_JSON", "")
        .env_remove("SICKLE_FAULT")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sickle-shard");
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut finished_early = false;
    loop {
        if std::fs::read_to_string(&journal)
            .map(|s| s.contains("\"event\": \"done\"") || s.contains("\"event\":\"done\""))
            .unwrap_or(false)
        {
            break;
        }
        if child.try_wait().expect("poll driver").is_some() {
            // The whole mini-suite finished before we could kill it;
            // resuming a complete journal must still reproduce the dump.
            finished_early = true;
            break;
        }
        assert!(
            Instant::now() < deadline,
            "journal never recorded a completed task"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    if !finished_early {
        let driver_pid = child.id();
        let _ = Command::new("kill")
            .args(["-KILL", &driver_pid.to_string()])
            .status();
        let _ = child.wait();
        kill_orphan_serves(driver_pid);
    }

    // Resume from the journal: finished tasks are seeded from their
    // recorded responses, the rest re-run, and the merged dump is
    // byte-identical to the oracle.
    let resumed = Command::new(SHARD)
        .args(["--shards", "1", "--resume"])
        .arg(&journal)
        .args(["--serve-bin", SERVE])
        .env("SICKLE_ONLY", "1,2,3,5")
        .env("SICKLE_MAX_VISITED", "3000")
        .env("SICKLE_JSON", "")
        .env_remove("SICKLE_FAULT")
        .output()
        .expect("run sickle-shard --resume");
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    assert!(resumed.status.success(), "resume run: {stderr}");
    assert!(
        stderr.contains("resuming:"),
        "the resume was journal-seeded: {stderr}"
    );
    assert_eq!(
        String::from_utf8_lossy(&oracle.stdout),
        String::from_utf8_lossy(&resumed.stdout),
        "resumed merge is byte-identical to the oracle"
    );
}
