//! Integration tests for the corpus subsystem: admission determinism,
//! the extensional-ambiguity gate, and the frozen-bundle round trip.

use std::collections::BTreeMap;
use std::path::PathBuf;

use sickle_bench::corpus::{
    admit, bundle_hash, corpus_digest, freeze_corpus, load_corpus, render_dump, run_corpus,
    CorpusBudget, CorpusFilters,
};
use sickle_benchmarks::{generate_candidate, CandidateTask, CorpusCategory};
use sickle_core::{Query, Session};
use sickle_table::{AggFunc, Table, Value};

/// A throwaway directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("sickle-corpus-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Small debug-friendly budget (tests run unoptimized).
fn test_budget() -> CorpusBudget {
    CorpusBudget {
        max_visited: 20_000,
        max_solutions: 10,
    }
}

/// Admits a window of seeds on a warm session, tallying rejections.
fn admit_window(
    lo: u64,
    n: u64,
) -> (
    Vec<sickle_bench::corpus::TaskBundle>,
    BTreeMap<&'static str, usize>,
) {
    let session = Session::new();
    let budget = test_budget();
    let mut admitted = Vec::new();
    let mut tally = BTreeMap::new();
    for seed in lo..lo + n {
        match admit(&generate_candidate(seed), &budget, &session) {
            Ok(bundle) => admitted.push(bundle),
            Err(r) => *tally.entry(r.reason).or_insert(0) += 1,
        }
    }
    (admitted, tally)
}

/// Every file in `dir`, relative path → contents.
fn read_tree(dir: &std::path::Path) -> BTreeMap<String, Vec<u8>> {
    fn walk(root: &std::path::Path, dir: &std::path::Path, out: &mut BTreeMap<String, Vec<u8>>) {
        for entry in std::fs::read_dir(dir).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(root, &path, out);
            } else {
                let rel = path
                    .strip_prefix(root)
                    .expect("under root")
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, std::fs::read(&path).expect("read file"));
            }
        }
    }
    let mut out = BTreeMap::new();
    walk(dir, dir, &mut out);
    out
}

#[test]
fn same_seed_produces_identical_bundle_bytes_and_verdict() {
    // Two fully independent admission passes over the same seed window …
    let (first, tally_a) = admit_window(42, 8);
    let (second, tally_b) = admit_window(42, 8);
    assert!(!first.is_empty(), "window admitted nothing");
    assert_eq!(tally_a, tally_b, "rejection verdicts must be deterministic");
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.expected, b.expected, "{}: solution lists differ", a.id);
        assert_eq!(
            bundle_hash(a).unwrap(),
            bundle_hash(b).unwrap(),
            "{}: content hashes differ",
            a.id
        );
    }

    // … and two independent freezes are byte-identical trees.
    let dir_a = TempDir::new("freeze-a");
    let dir_b = TempDir::new("freeze-b");
    let budget = test_budget();
    freeze_corpus(&dir_a.0, 42, 8, &budget, &first, &tally_a).unwrap();
    freeze_corpus(&dir_b.0, 42, 8, &budget, &second, &tally_b).unwrap();
    assert_eq!(read_tree(&dir_a.0), read_tree(&dir_b.0));
}

#[test]
fn known_ambiguous_task_is_rejected_as_ambiguous_top() {
    // Two string keys in 1:1 correspondence, and a demo that shows ONLY
    // the aggregate column: group-by-region and group-by-city are then
    // both demo-consistent, tie at the same query size, and genuinely
    // disagree extensionally (different key columns) — the definition of
    // an inadmissible task.
    let rows = vec![
        vec![
            Value::Str("west".into()),
            Value::Str("akron".into()),
            Value::Int(10),
        ],
        vec![
            Value::Str("west".into()),
            Value::Str("akron".into()),
            Value::Int(20),
        ],
        vec![
            Value::Str("east".into()),
            Value::Str("boise".into()),
            Value::Int(7),
        ],
        vec![
            Value::Str("east".into()),
            Value::Str("boise".into()),
            Value::Int(5),
        ],
    ];
    let t = Table::new(
        [
            "region".to_string(),
            "city".to_string(),
            "revenue".to_string(),
        ],
        rows,
    )
    .unwrap();
    let q_gt = Query::Group {
        src: Box::new(Query::Input(0)),
        keys: vec![0],
        agg: AggFunc::Sum,
        target: 2,
    };
    let cand = CandidateTask {
        seed: 7,
        category: CorpusCategory::Group,
        inputs: vec![t],
        max_depth: q_gt.size(),
        q_gt,
        // Demonstrate only the sum column — the region column would have
        // disambiguated the two keys.
        out_cols: vec![1],
        join_keys: Vec::new(),
        enable_join: false,
    };
    let verdict = admit(&cand, &test_budget(), &Session::new());
    let rejection = verdict.expect_err("ambiguous task must not be admitted");
    assert_eq!(rejection.reason, "ambiguous_top", "{}", rejection.detail);
}

#[test]
fn frozen_corpus_round_trips_and_runs_clean() {
    let (admitted, tally) = admit_window(100, 10);
    assert!(admitted.len() >= 3, "window admitted too little");
    let dir = TempDir::new("roundtrip");
    freeze_corpus(&dir.0, 100, 10, &test_budget(), &admitted, &tally).unwrap();

    // Unfiltered load returns every admitted bundle, hash-verified.
    let loaded = load_corpus(&dir.0, &CorpusFilters::default()).unwrap();
    assert_eq!(loaded.len(), admitted.len());
    for (a, l) in admitted.iter().zip(&loaded) {
        assert_eq!(a.id, l.id);
        assert_eq!(a.expected, l.expected);
        assert_eq!(a.demo_rows, l.demo_rows);
        assert_eq!(a.tables.len(), l.tables.len());
    }

    // The run path reproduces every frozen expectation, and the digest is
    // stable across two runs.
    let outcomes = run_corpus(&loaded);
    for o in &outcomes {
        assert_eq!(o.status, "ok", "{}: {:?}", o.id, o.solutions);
    }
    let again = run_corpus(&loaded);
    assert_eq!(corpus_digest(&outcomes), corpus_digest(&again));
    assert_eq!(render_dump(&outcomes), render_dump(&again));

    // Filters select exact slices.
    let by_id = CorpusFilters {
        task_ids: Some([loaded[0].id.clone()].into_iter().collect()),
        ..Default::default()
    };
    let one = load_corpus(&dir.0, &by_id).unwrap();
    assert_eq!(one.len(), 1);
    assert_eq!(one[0].id, loaded[0].id);

    let lo = loaded.iter().map(|b| b.seed).min().unwrap();
    let ranged = CorpusFilters {
        seed_range: Some((lo, lo)),
        ..Default::default()
    };
    let slice = load_corpus(&dir.0, &ranged).unwrap();
    assert!(slice.iter().all(|b| b.seed == lo));
    assert_eq!(slice.len(), loaded.iter().filter(|b| b.seed == lo).count());
}

#[test]
fn tampered_bundle_fails_the_hash_check() {
    let (admitted, tally) = admit_window(200, 6);
    assert!(!admitted.is_empty());
    let dir = TempDir::new("tamper");
    freeze_corpus(&dir.0, 200, 6, &test_budget(), &admitted, &tally).unwrap();

    // Flip one byte in the first bundle's first table file.
    let task_dir = dir.0.join("tasks").join(&admitted[0].id);
    let table_file = std::fs::read_dir(&task_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("table"))
        })
        .expect("bundle has a table file");
    // Change one digit so the file still parses but its bytes differ.
    let mut bytes = std::fs::read(&table_file).unwrap();
    let pos = bytes
        .iter()
        .position(|b| b.is_ascii_digit())
        .expect("table file contains a number");
    bytes[pos] = if bytes[pos] == b'9' {
        b'8'
    } else {
        bytes[pos] + 1
    };
    std::fs::write(&table_file, bytes).unwrap();

    let err = load_corpus(&dir.0, &CorpusFilters::default()).unwrap_err();
    assert!(err.contains("hash mismatch"), "unexpected error: {err}");
}
